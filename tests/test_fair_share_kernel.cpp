// Lockdown for the flat water-filling kernel (DESIGN.md §13): component
// decomposition and partial-churn reuse, pool-size invariance of the
// parallel component fill (solver-level bitwise equality AND engine-level
// metrics-CSV + checkpoint-byte equality), the parallel_fair_share config
// flag being a pure throughput knob, and the fair_share.components /
// fair_share.arena_bytes gauges.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "fault/fault_plan.hpp"
#include "net/fair_share.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "obs/registry.hpp"
#include "snapshot/checkpoint.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"

namespace core = sheriff::core;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace net = sheriff::net;
namespace fault = sheriff::fault;
namespace sc = sheriff::common;

namespace {

constexpr double kTol = 1e-9;

topo::Topology small_fat_tree() {
  topo::FatTreeOptions options;
  options.pods = 4;  // 8 racks
  options.hosts_per_rack = 2;
  options.tor_agg_gbps = 1.0;
  return topo::build_fat_tree(options);
}

net::Flow make_flow(net::FlowId id, topo::NodeId src, topo::NodeId dst, double demand) {
  net::Flow f;
  f.id = id;
  f.src_host = src;
  f.dst_host = dst;
  f.demand_gbps = demand;
  return f;
}

/// Intra-rack flows only: each rack's flows share that rack's host—ToR
/// links and nothing else, so every rack is its own connected component of
/// the flow–link sharing graph. `per_rack` flows between the rack's two
/// hosts (alternating direction — both directions ride the same undirected
/// links, so they stay one component).
std::vector<net::Flow> intra_rack_flows(const topo::Topology& t, const net::Router& router,
                                        std::size_t per_rack) {
  std::vector<net::Flow> flows;
  for (topo::RackId r = 0; r < t.rack_count(); ++r) {
    const auto& rack = t.rack(r);
    for (std::size_t i = 0; i < per_rack; ++i) {
      const topo::NodeId a = rack.hosts[i % 2];
      const topo::NodeId b = rack.hosts[(i + 1) % 2];
      flows.push_back(make_flow(static_cast<net::FlowId>(flows.size()), a, b,
                                0.3 + 0.1 * static_cast<double>(i)));
    }
  }
  router.route_all(flows);
  return flows;
}

void expect_matches_reference(const topo::Topology& t, const std::vector<net::Flow>& flows,
                              const net::FairShareResult& incremental) {
  std::vector<net::Flow> reference_flows = flows;
  const auto reference = net::max_min_fair_share(t, reference_flows);
  ASSERT_EQ(incremental.flow_rate.size(), reference.flow_rate.size());
  for (std::size_t f = 0; f < reference.flow_rate.size(); ++f) {
    EXPECT_NEAR(incremental.flow_rate[f], reference.flow_rate[f], kTol) << "flow " << f;
  }
  for (topo::LinkId l = 0; l < t.link_count(); ++l) {
    EXPECT_NEAR(incremental.link_load_gbps[l], reference.link_load_gbps[l], kTol)
        << "link " << l;
    EXPECT_NEAR(incremental.link_utilization[l], reference.link_utilization[l], kTol)
        << "link " << l;
  }
}

}  // namespace

// --- partial churn -----------------------------------------------------------

// 10% of the flows change demand; the other components' flows must keep
// their rates without being refilled, and the allocation must still match
// the from-scratch reference.
TEST(FairShareKernel, PartialChurnReusesUntouchedComponents) {
  const auto t = small_fat_tree();
  net::Router router(t);
  auto flows = intra_rack_flows(t, router, 5);  // 8 racks × 5 = 40 flows

  net::FairShareSolver solver(t);
  solver.solve(flows);
  ASSERT_EQ(solver.component_count(), t.rack_count());
  const auto before = solver.stats();

  // Churn demand on 4 of 40 flows (10%), all inside rack 0's component.
  for (std::size_t f = 0; f < 4; ++f) flows[f].demand_gbps *= 1.7;
  expect_matches_reference(t, flows, solver.solve(flows));

  const auto& after = solver.stats();
  EXPECT_EQ(after.dirty_flows, before.dirty_flows + 4);
  // The closure is rack 0's whole component (5 flows); every other
  // component is reused untouched.
  EXPECT_EQ(after.affected_flows, before.affected_flows + 5);
  EXPECT_GT(after.reused_flows, before.reused_flows);
  EXPECT_EQ(after.reused_flows, before.reused_flows + flows.size() - 5);
  EXPECT_EQ(after.full_rebuilds, before.full_rebuilds);
}

// Demand churn that leaves the effective demand unchanged (rate-limited
// flow) must not dirty anything.
TEST(FairShareKernel, RateLimitedDemandChurnIsInvisible) {
  const auto t = small_fat_tree();
  net::Router router(t);
  auto flows = intra_rack_flows(t, router, 3);
  for (auto& f : flows) f.rate_limit_gbps = 0.2;  // below every demand

  net::FairShareSolver solver(t);
  solver.solve(flows);
  const auto before = solver.stats();
  for (auto& f : flows) f.demand_gbps += 1.0;  // effective demand still 0.2
  solver.solve(flows);
  EXPECT_EQ(solver.stats().dirty_flows, before.dirty_flows);
  EXPECT_EQ(solver.stats().reused_flows, before.reused_flows + flows.size());
}

// --- pool-size invariance ----------------------------------------------------

// The parallel component fill must be BITWISE identical to the serial fill
// for any pool size. 320 intra-rack flows (8 components × 40) push every
// solve past the parallel-fill threshold, so pools 2/8 genuinely exercise
// the parallel_for path.
TEST(FairShareKernel, SolverResultsAreBitwiseInvariantAcrossPoolSizes) {
  const auto t = small_fat_tree();
  net::Router router(t);

  // One churn trace, replayed identically per pool size: per-step demand
  // scale factors touching a different subset of components each step.
  const std::size_t steps = 6;
  std::vector<std::vector<double>> trace_rates;
  std::vector<std::vector<double>> trace_loads;
  for (const std::size_t workers : {0u, 1u, 2u, 8u}) {
    sc::ThreadPool pool(workers == 0 ? 1 : workers);
    auto flows = intra_rack_flows(t, router, 40);
    net::FairShareSolver solver(t);
    if (workers != 0) solver.set_thread_pool(&pool);

    std::vector<std::vector<double>> rates;
    std::vector<std::vector<double>> loads;
    for (std::size_t step = 0; step < steps; ++step) {
      for (std::size_t f = step; f < flows.size(); f += 3) {
        flows[f].demand_gbps *= 1.0 + 0.05 * static_cast<double>(step + 1);
      }
      const auto& result = solver.solve(flows);
      rates.push_back(result.flow_rate);
      loads.push_back(result.link_load_gbps);
    }
    EXPECT_GT(solver.component_count(), 1u);
    if (workers == 0) {
      trace_rates = std::move(rates);
      trace_loads = std::move(loads);
    } else {
      // operator== on vector<double> is bitwise for identical values: any
      // reordering of FP sums across threads fails here.
      EXPECT_EQ(rates, trace_rates) << "rates diverged at pool size " << workers;
      EXPECT_EQ(loads, trace_loads) << "loads diverged at pool size " << workers;
    }
  }
}

// --- engine-level determinism ------------------------------------------------

namespace {

topo::Topology small_bcube() {
  topo::BCubeOptions options;
  options.ports = 3;
  options.levels = 2;
  return topo::build_bcube(options);
}

wl::DeploymentOptions kernel_deployment() {
  wl::DeploymentOptions options;
  options.seed = 23;
  options.vms_per_host = 2.5;
  options.placement = wl::PlacementPolicy::kSkewed;
  return options;
}

fault::FaultPlan kernel_fault_plan(const topo::Topology& topology, std::size_t rounds) {
  fault::FaultOptions options;
  options.seed = 17;
  fault::FaultPlan plan(options);
  plan.fail_link(static_cast<topo::LinkId>(7 % topology.link_count()), 2, rounds / 3);
  plan.fail_link(static_cast<topo::LinkId>(23 % topology.link_count()), rounds / 3,
                 2 * rounds / 3);
  plan.fail_host(topology.rack(1).hosts[0], rounds / 2);
  return plan;
}

std::string metrics_csv(const std::vector<core::RoundMetrics>& rounds) {
  std::ostringstream os;
  core::write_metrics_csv(os, rounds);
  return os.str();
}

/// Runs R rounds at pool sizes 1/2/8 with the parallel fair-share fill on
/// and requires the metrics CSV and every checkpoint byte to be identical.
void expect_pool_size_invariance(const topo::Topology& topology, bool faulted) {
  const std::size_t rounds_n = 120;
  fault::FaultPlan plan = faulted ? kernel_fault_plan(topology, rounds_n) : fault::FaultPlan{};
  std::string reference_csv;
  std::vector<std::uint8_t> reference_checkpoint;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    sc::ThreadPool pool(workers);
    core::EngineConfig config;
    config.observe = true;
    config.pool = &pool;
    config.parallel_fair_share = true;
    if (faulted) config.fault_plan = &plan;
    core::DistributedEngine engine(topology, kernel_deployment(), config);
    std::vector<core::RoundMetrics> rounds;
    rounds.reserve(rounds_n);
    for (std::size_t r = 0; r < rounds_n; ++r) rounds.push_back(engine.run_round());
    const std::string csv = metrics_csv(rounds);
    const std::vector<std::uint8_t> checkpoint = core::Checkpoint::serialize(engine);
    if (workers == 1) {
      reference_csv = csv;
      reference_checkpoint = checkpoint;
    } else {
      EXPECT_EQ(csv, reference_csv) << "metrics diverged at pool size " << workers;
      EXPECT_EQ(checkpoint == reference_checkpoint, true)
          << "checkpoint bytes diverged at pool size " << workers;
    }
  }
}

}  // namespace

TEST(FairShareKernel, FatTreePristineEngineIsPoolSizeInvariant) {
  expect_pool_size_invariance(small_fat_tree(), false);
}

TEST(FairShareKernel, FatTreeFaultedEngineIsPoolSizeInvariant) {
  expect_pool_size_invariance(small_fat_tree(), true);
}

TEST(FairShareKernel, BCubeFaultedEngineIsPoolSizeInvariant) {
  expect_pool_size_invariance(small_bcube(), true);
}

// parallel_fair_share is a throughput knob: flipping it off must not move
// a byte of the metrics CSV, and the checkpoint fingerprint deliberately
// excludes it, so a checkpoint from either setting matches the other.
TEST(FairShareKernel, ParallelFlagDoesNotChangeResults) {
  const auto topology = small_fat_tree();
  const std::size_t rounds_n = 80;
  std::string reference_csv;
  std::vector<std::uint8_t> reference_checkpoint;
  for (const bool parallel : {false, true}) {
    sc::ThreadPool pool(4);
    core::EngineConfig config;
    config.observe = true;
    config.pool = &pool;
    config.parallel_fair_share = parallel;
    core::DistributedEngine engine(topology, kernel_deployment(), config);
    std::vector<core::RoundMetrics> rounds;
    for (std::size_t r = 0; r < rounds_n; ++r) rounds.push_back(engine.run_round());
    const std::string csv = metrics_csv(rounds);
    const std::vector<std::uint8_t> checkpoint = core::Checkpoint::serialize(engine);
    if (!parallel) {
      reference_csv = csv;
      reference_checkpoint = checkpoint;
    } else {
      EXPECT_EQ(csv, reference_csv);
      EXPECT_EQ(checkpoint == reference_checkpoint, true);
    }
  }
}

// --- observability -----------------------------------------------------------

TEST(FairShareKernel, PublishesComponentAndArenaGauges) {
  const auto t = small_fat_tree();
  net::Router router(t);
  auto flows = intra_rack_flows(t, router, 3);
  net::FairShareSolver solver(t);
  solver.solve(flows);

  sheriff::obs::MetricRegistry registry;
  solver.publish_metrics(registry);
  const auto* components = registry.find_gauge("fair_share.components");
  const auto* arena = registry.find_gauge("fair_share.arena_bytes");
  ASSERT_NE(components, nullptr);
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(components->value(), static_cast<double>(t.rack_count()));
  EXPECT_EQ(arena->value(), static_cast<double>(solver.arena_bytes()));
  EXPECT_GT(solver.arena_bytes(), 0u);
}

// The engine's phase profile splits the fair-share time into build + fill
// once the incremental solver is on.
TEST(FairShareKernel, PhaseProfileSplitsBuildAndFill) {
  const auto topology = small_fat_tree();
  sc::ThreadPool pool(2);
  core::EngineConfig config;
  config.pool = &pool;
  core::DistributedEngine engine(topology, kernel_deployment(), config);
  for (std::size_t r = 0; r < 10; ++r) engine.run_round();
  const core::PhaseProfile& profile = engine.phase_profile();
  EXPECT_GT(profile.fair_share_build_ns + profile.fair_share_fill_ns, 0u);
  EXPECT_LE(profile.fair_share_build_ns + profile.fair_share_fill_ns, profile.fair_share_ns);
}
