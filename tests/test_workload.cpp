// Workload substrate tests: profiles, trace generators (shape properties of
// the Fig. 3–5 stand-ins), the dependency graph, and deployment invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "timeseries/acf.hpp"
#include "topology/fat_tree.hpp"
#include "workload/dependency.hpp"
#include "workload/deployment.hpp"
#include "workload/profile.hpp"
#include "workload/trace_generator.hpp"

namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace sc = sheriff::common;
namespace ts = sheriff::ts;

TEST(Profile, MaxAndThreshold) {
  wl::WorkloadProfile p;
  p[wl::Feature::kCpu] = 0.3;
  p[wl::Feature::kMemory] = 0.95;
  p[wl::Feature::kDiskIo] = 0.1;
  p[wl::Feature::kTraffic] = 0.2;
  EXPECT_DOUBLE_EQ(p.max_component(), 0.95);
  EXPECT_TRUE(p.any_exceeds(0.9));
  EXPECT_FALSE(p.any_exceeds(0.96));
}

TEST(Profile, ClampBoundsComponents) {
  wl::WorkloadProfile p;
  p[wl::Feature::kCpu] = -0.5;
  p[wl::Feature::kMemory] = 1.7;
  p.clamp();
  EXPECT_DOUBLE_EQ(p[wl::Feature::kCpu], 0.0);
  EXPECT_DOUBLE_EQ(p[wl::Feature::kMemory], 1.0);
  EXPECT_FALSE(p.to_string().empty());
}

TEST(Traces, CpuStaysInPercentRange) {
  auto gen = wl::make_cpu_trace(1);
  const auto xs = gen->generate(2000);
  for (double x : xs) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 100.0);
  }
  const double m = sc::mean(xs);
  EXPECT_GT(m, 20.0);
  EXPECT_LT(m, 70.0);
}

TEST(Traces, CpuHasDiurnalPeriodicity) {
  auto gen = wl::make_cpu_trace(2);
  const auto xs = gen->generate(288 * 4);  // four days
  // Autocorrelation at the daily lag should clearly beat the half-day lag.
  const auto r = ts::autocorrelation(xs, 288);
  EXPECT_GT(r[287], 0.35);
  EXPECT_LT(r[143], 0.0);  // anti-phase at half a day
}

TEST(Traces, DiskIoIsBursty) {
  auto gen = wl::make_disk_io_trace(3);
  const auto xs = gen->generate(3000);
  const double mean = sc::mean(xs);
  const double p99 = sc::quantile(xs, 0.99);
  EXPECT_GT(p99, 1.8 * mean);  // heavy spikes well above the mean
  for (double x : xs) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1200.0);
  }
}

TEST(Traces, WeeklyTrafficWeekendsAreLighter) {
  auto gen = wl::make_weekly_traffic_trace(4);
  const auto xs = gen->generate(48 * 14);  // two weeks at 30-min samples
  double weekday_peak = 0.0;
  double weekend_peak = 0.0;
  for (std::size_t t = 0; t < xs.size(); ++t) {
    const int day = static_cast<int>(t / 48) % 7;
    auto& peak = day >= 5 ? weekend_peak : weekday_peak;
    peak = std::max(peak, xs[t]);
  }
  EXPECT_GT(weekday_peak, weekend_peak);
}

TEST(Traces, DeterministicPerSeed) {
  auto a = wl::make_weekly_traffic_trace(9);
  auto b = wl::make_weekly_traffic_trace(9);
  EXPECT_EQ(a->generate(100), b->generate(100));
  auto c = wl::make_weekly_traffic_trace(10);
  EXPECT_NE(a->generate(100), c->generate(100));
}

TEST(Traces, NormalizeClampsToUnit) {
  const std::vector<double> raw{-5.0, 50.0, 150.0};
  const auto n = wl::normalize_trace(raw, 100.0);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.5);
  EXPECT_DOUBLE_EQ(n[2], 1.0);
}

TEST(DependencyGraph, EdgesAndNeighbors) {
  wl::DependencyGraph g(4);
  g.add_dependency(0, 1);
  g.add_dependency(0, 2);
  g.add_dependency(0, 1);  // duplicate ignored
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.depends(1, 0));
  EXPECT_FALSE(g.depends(1, 2));
  EXPECT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_THROW(g.add_dependency(1, 1), sc::RequirementError);
}

namespace {

wl::Deployment make_deployment(std::uint64_t seed = 42) {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  wl::DeploymentOptions options;
  options.seed = seed;
  return wl::Deployment(t, options);
}

}  // namespace

TEST(Deployment, CapacityAccountingConsistent) {
  const auto d = make_deployment();
  EXPECT_GT(d.vm_count(), 0u);
  for (const auto& node : d.topology().nodes()) {
    if (node.kind != topo::NodeKind::kHost) continue;
    int used = 0;
    for (wl::VmId id : d.vms_on_host(node.id)) {
      EXPECT_EQ(d.vm(id).host, node.id);
      used += d.vm(id).capacity;
    }
    EXPECT_EQ(used, d.host_used_capacity(node.id));
    EXPECT_LE(used, d.host_capacity());
    EXPECT_EQ(d.host_free_capacity(node.id), d.host_capacity() - used);
  }
}

TEST(Deployment, DependentVmsNeverShareHosts) {
  const auto d = make_deployment();
  const auto& deps = d.dependencies();
  for (wl::VmId a = 0; a < d.vm_count(); ++a) {
    for (wl::VmId b : deps.neighbors(a)) {
      EXPECT_NE(d.vm(a).host, d.vm(b).host);
    }
  }
}

TEST(Deployment, VmCapacitiesRespectBounds) {
  const auto d = make_deployment();
  for (const auto& vm : d.vms()) {
    EXPECT_GE(vm.capacity, d.options().min_vm_capacity);
    EXPECT_LE(vm.capacity, d.options().max_vm_capacity);
    EXPECT_GE(vm.value, 1.0);
  }
}

TEST(Deployment, MoveVmUpdatesBookkeeping) {
  auto d = make_deployment();
  // Find a feasible (vm, host) pair.
  for (const auto& vm : d.vms()) {
    for (const auto& node : d.topology().nodes()) {
      if (node.kind != topo::NodeKind::kHost) continue;
      if (!d.can_place(vm.id, node.id)) continue;
      const auto old_host = vm.host;
      const int before_src = d.host_used_capacity(old_host);
      const int before_dst = d.host_used_capacity(node.id);
      d.move_vm(vm.id, node.id);
      EXPECT_EQ(d.vm(vm.id).host, node.id);
      EXPECT_EQ(d.host_used_capacity(old_host), before_src - vm.capacity);
      EXPECT_EQ(d.host_used_capacity(node.id), before_dst + vm.capacity);
      const auto on_dst = d.vms_on_host(node.id);
      EXPECT_NE(std::find(on_dst.begin(), on_dst.end(), vm.id), on_dst.end());
      return;
    }
  }
  FAIL() << "no feasible move found";
}

TEST(Deployment, MoveToSameHostRejected) {
  auto d = make_deployment();
  const auto& vm = d.vm(0);
  EXPECT_FALSE(d.can_place(vm.id, vm.host));
  EXPECT_THROW(d.move_vm(vm.id, vm.host), sc::RequirementError);
}

TEST(Deployment, AdvanceEvolvesProfilesInUnitRange) {
  auto d = make_deployment();
  const auto before = d.vm(0).profile;
  bool changed = false;
  for (int tick = 0; tick < 5; ++tick) {
    d.advance();
    for (const auto& vm : d.vms()) {
      for (double v : vm.profile.values) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
    if (d.vm(0).profile.values != before.values) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Deployment, SkewedPlacementIsMoreImbalanced) {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  wl::DeploymentOptions skewed;
  skewed.seed = 7;
  skewed.placement = wl::PlacementPolicy::kSkewed;
  wl::DeploymentOptions uniform = skewed;
  uniform.placement = wl::PlacementPolicy::kUniform;
  const wl::Deployment ds(t, skewed);
  const wl::Deployment du(t, uniform);
  EXPECT_GT(ds.workload_stddev(), du.workload_stddev());
}

TEST(Deployment, DeterministicForSeed) {
  const auto a = make_deployment(5);
  const auto b = make_deployment(5);
  ASSERT_EQ(a.vm_count(), b.vm_count());
  for (wl::VmId id = 0; id < a.vm_count(); ++id) {
    EXPECT_EQ(a.vm(id).host, b.vm(id).host);
    EXPECT_EQ(a.vm(id).capacity, b.vm(id).capacity);
    EXPECT_EQ(a.vm(id).profile.values, b.vm(id).profile.values);
  }
}

TEST(Deployment, WorkloadMetricsAreFinite) {
  const auto d = make_deployment();
  EXPECT_GE(d.workload_stddev(), 0.0);
  EXPECT_GT(d.workload_mean(), 0.0);
  EXPECT_TRUE(std::isfinite(d.workload_stddev()));
}
