// End-to-end invariant-auditor sweep (the lockdown for src/obs/): the
// engine runs with the auditor on across pristine and faulted scenarios,
// on Fat-Tree and BCube fabrics, sequentially and on a size-8 pool, and
// every round must close with zero invariant violations. The second half
// feeds the auditor deliberately corrupted round state and proves each
// check actually fires.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "fault/fault_plan.hpp"
#include "net/fair_share.hpp"
#include "net/routing.hpp"
#include "obs/auditor.hpp"
#include "obs/hub.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"

namespace core = sheriff::core;
namespace fault = sheriff::fault;
namespace net = sheriff::net;
namespace obs = sheriff::obs;
namespace topo = sheriff::topo;
namespace wl = sheriff::wl;
namespace sc = sheriff::common;

namespace {

constexpr std::size_t kLongRun = 200;

const topo::Topology& fat_tree() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

const topo::Topology& bcube() {
  static const topo::Topology t = [] {
    topo::BCubeOptions options;
    options.ports = 4;
    options.levels = 1;
    return topo::build_bcube(options);
  }();
  return t;
}

wl::DeploymentOptions deployment_options(std::uint64_t seed = 42) {
  wl::DeploymentOptions options;
  options.seed = seed;
  return options;
}

core::EngineConfig audited_config() {
  core::EngineConfig config;
  config.parallel_collect = false;
  config.audit = true;  // implies observe
  return config;
}

fault::FaultPlan faulted_plan(const topo::Topology& t) {
  fault::FaultOptions options;
  options.seed = 7;
  options.message_drop_probability = 0.05;
  auto plan = fault::FaultPlan::random_link_flaps(t, options, 3, 5, 120, 8);
  plan.fail_shim(1, 10, 30);
  plan.fail_shim(2, 60, 0);  // permanent shim loss
  plan.set_options(options);
  return plan;
}

/// Runs `rounds` audited rounds and returns the engine for inspection;
/// asserts zero violations (dumping the retained messages on failure).
void expect_clean_run(const topo::Topology& t, core::EngineConfig config, std::size_t rounds,
                      std::uint64_t seed = 42) {
  core::DistributedEngine engine(t, deployment_options(seed), config);
  engine.run(rounds);
  ASSERT_NE(engine.observation_hub(), nullptr);
  const obs::InvariantAuditor& auditor = *engine.observation_hub()->auditor();
  EXPECT_EQ(auditor.rounds_audited(), rounds);
  EXPECT_EQ(auditor.violation_count(), 0u) << [&] {
    std::string all;
    for (const auto& m : auditor.messages()) all += m + "\n";
    return all;
  }();
}

}  // namespace

// --- S1: auditor-on end-to-end runs ---------------------------------------

TEST(AuditorE2E, FatTreePristineSequential) {
  expect_clean_run(fat_tree(), audited_config(), kLongRun);
}

TEST(AuditorE2E, FatTreePristinePool8) {
  sc::ThreadPool pool(8);
  auto config = audited_config();
  config.parallel_collect = true;
  config.pool = &pool;
  expect_clean_run(fat_tree(), config, kLongRun);
}

TEST(AuditorE2E, FatTreeFaultedSequential) {
  const auto plan = faulted_plan(fat_tree());
  auto config = audited_config();
  config.fault_plan = &plan;
  expect_clean_run(fat_tree(), config, kLongRun);
}

TEST(AuditorE2E, FatTreeFaultedPool8) {
  sc::ThreadPool pool(8);
  const auto plan = faulted_plan(fat_tree());
  auto config = audited_config();
  config.fault_plan = &plan;
  config.parallel_collect = true;
  config.pool = &pool;
  expect_clean_run(fat_tree(), config, kLongRun);
}

TEST(AuditorE2E, BCubePristineSequential) {
  expect_clean_run(bcube(), audited_config(), kLongRun, 11);
}

TEST(AuditorE2E, BCubeFaultedPool8) {
  sc::ThreadPool pool(8);
  // BCube(4,1) has no switch-to-switch links, so random_link_flaps does not
  // apply — fail concrete links, one level switch, and a shim instead.
  const topo::Topology& t = bcube();
  fault::FaultOptions options;
  options.seed = 7;
  options.message_drop_probability = 0.05;
  fault::FaultPlan plan;
  plan.fail_link(0, 5, 40);
  plan.fail_link(t.link_count() - 1, 20, 60);
  plan.fail_switch(t.nodes_of_kind(topo::NodeKind::kBCubeSwitch).front(), 30, 80);
  plan.fail_shim(1, 10, 30);
  plan.set_options(options);
  auto config = audited_config();
  config.fault_plan = &plan;
  config.parallel_collect = true;
  config.pool = &pool;
  expect_clean_run(t, config, kLongRun, 11);
}

TEST(AuditorE2E, DeepFairShareAuditAgreesOnShortRun) {
  auto config = audited_config();
  config.deep_fair_share_audit = true;  // check 7: re-solve every round
  expect_clean_run(fat_tree(), config, 40);
}

TEST(AuditorE2E, NaiveFairSharePathIsAlsoClean) {
  auto config = audited_config();
  config.incremental_fair_share = false;  // solver == nullptr branch
  expect_clean_run(fat_tree(), config, 60);
}

TEST(AuditorE2E, CentralizedManagerIsAlsoClean) {
  auto config = audited_config();
  config.mode = core::ManagerMode::kCentralized;
  expect_clean_run(fat_tree(), config, 60);
}

TEST(AuditorE2E, SerializedFcfsProtocolIsAlsoClean) {
  auto config = audited_config();
  config.protocol = core::MigrationProtocol::kSerializedFcfs;
  expect_clean_run(fat_tree(), config, 60);
}

TEST(AuditorE2E, FailFastCleanRunDoesNotThrow) {
  const auto plan = faulted_plan(fat_tree());
  auto config = audited_config();
  config.fault_plan = &plan;
  config.audit_fail_fast = true;
  EXPECT_NO_THROW({
    core::DistributedEngine engine(fat_tree(), deployment_options(), config);
    engine.run(50);
  });
}

TEST(AuditorE2E, MetricsAndTraceAgreeWithRoundMetrics) {
  const auto plan = faulted_plan(fat_tree());
  auto config = audited_config();
  config.fault_plan = &plan;
  core::DistributedEngine engine(fat_tree(), deployment_options(), config);
  const auto rounds = engine.run(100);

  const obs::ObservationHub& hub = *engine.observation_hub();
  const auto sum = [&rounds](auto pick) {
    return std::accumulate(rounds.begin(), rounds.end(), std::uint64_t{0},
                           [&pick](std::uint64_t acc, const core::RoundMetrics& m) {
                             return acc + static_cast<std::uint64_t>(pick(m));
                           });
  };

  const obs::Counter* migrations = hub.registry().find_counter("engine.migrations");
  ASSERT_NE(migrations, nullptr);
  EXPECT_EQ(migrations->value(), sum([](const auto& m) { return m.migrations; }));

  const obs::Counter* reroutes = hub.registry().find_counter("engine.reroutes");
  ASSERT_NE(reroutes, nullptr);
  EXPECT_EQ(reroutes->value(), sum([](const auto& m) { return m.reroutes; }));

  const obs::Counter* drops = hub.registry().find_counter("engine.protocol_drops");
  ASSERT_NE(drops, nullptr);
  EXPECT_EQ(drops->value(), sum([](const auto& m) { return m.protocol_drops; }));

  const obs::Gauge* audited = hub.registry().find_gauge("auditor.rounds");
  ASSERT_NE(audited, nullptr);
  EXPECT_DOUBLE_EQ(audited->value(), 100.0);

  // The fault plan fired, so the trace must hold FaultInjected events, and
  // the plan's shim failures must have produced takeovers.
  bool saw_fault = false;
  bool saw_takeover = false;
  for (const auto& r : hub.trace().snapshot()) {
    saw_fault |= r.type == obs::EventType::kFaultInjected;
    saw_takeover |= r.type == obs::EventType::kShimTakeover;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_takeover);
}

// --- negative tests: the auditor detects corrupted state -------------------

namespace {

/// A small self-consistent network state: a few routed flows with their
/// true max–min allocation, plus a fresh deployment.
struct AuditFixture {
  explicit AuditFixture(const topo::Topology& t)
      : topology(&t), deployment(t, deployment_options()), router(t) {
    const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
    const std::size_t half = hosts.size() / 2;
    for (std::uint32_t i = 0; i < 6 && i < half; ++i) {
      net::Flow flow;
      flow.id = i;
      flow.src_host = hosts[i];
      flow.dst_host = hosts[i + half];
      flow.demand_gbps = 0.4;
      SHERIFF_REQUIRE(router.route(flow), "fixture flow must be routable");
      flows.push_back(std::move(flow));
    }
    shares = net::max_min_fair_share(t, flows, nullptr);
  }

  [[nodiscard]] obs::InvariantAuditor::RoundInputs inputs() const {
    obs::InvariantAuditor::RoundInputs in;
    in.round = 1;
    in.deployment = &deployment;
    in.flows = flows;
    in.shares = &shares;
    return in;
  }

  const topo::Topology* topology;
  wl::Deployment deployment;
  net::Router router;
  std::vector<net::Flow> flows;
  net::FairShareResult shares;
};

}  // namespace

TEST(AuditorDetects, ConsistentFixtureIsClean) {
  AuditFixture fx(fat_tree());
  obs::InvariantAuditor auditor;
  auditor.audit_round(fx.inputs());
  EXPECT_EQ(auditor.violation_count(), 0u) << (auditor.messages().empty()
                                                   ? ""
                                                   : auditor.messages().front());
}

TEST(AuditorDetects, InflatedFlowRate) {
  AuditFixture fx(fat_tree());
  fx.shares.flow_rate[0] = 1e6;  // beyond demand and every link capacity
  obs::InvariantAuditor auditor;
  auditor.audit_network(fx.inputs());
  // check 1 (demand + per-link capacity) and check 2 (link conservation)
  EXPECT_GE(auditor.violation_count(), 3u);
  ASSERT_FALSE(auditor.messages().empty());
  EXPECT_NE(auditor.messages().front().find("[check 1]"), std::string::npos);
}

TEST(AuditorDetects, NegativeFlowRate) {
  AuditFixture fx(fat_tree());
  fx.shares.flow_rate[1] = -0.5;
  obs::InvariantAuditor auditor;
  auditor.audit_network(fx.inputs());
  EXPECT_GE(auditor.violation_count(), 1u);
}

TEST(AuditorDetects, MismatchedResultVectors) {
  AuditFixture fx(fat_tree());
  fx.shares.flow_rate.pop_back();
  obs::InvariantAuditor auditor;
  auditor.audit_network(fx.inputs());
  EXPECT_EQ(auditor.violation_count(), 1u);
  EXPECT_NE(auditor.messages().front().find("[check 2]"), std::string::npos);
}

TEST(AuditorDetects, LinkLoadDisagreement) {
  AuditFixture fx(fat_tree());
  // Claim load on a link no flow crosses; conservation (check 2) must trip.
  fx.shares.link_load_gbps.back() += 0.25;
  obs::InvariantAuditor auditor;
  auditor.audit_network(fx.inputs());
  EXPECT_GE(auditor.violation_count(), 1u);
}

TEST(AuditorDetects, CorruptMigrationMoves) {
  AuditFixture fx(fat_tree());
  const auto hosts = fx.topology->nodes_of_kind(topo::NodeKind::kHost);
  std::vector<obs::AuditedMove> moves(4);
  moves[0] = {0, hosts[0], hosts[1], -1.0, 1.0, 0.1};      // negative cost
  moves[1] = {1, hosts[0], hosts[0], 1.0, 1.0, 0.1};       // self-move
  moves[2] = {2, hosts[0], hosts[1], 1.0, 0.05, 0.2};      // downtime > duration
  moves[3] = {3, hosts[0], fx.topology->nodes_of_kind(topo::NodeKind::kTorSwitch)[0], 1.0, 1.0,
              0.1};                                        // target is a switch
  auto in = fx.inputs();
  in.moves = moves;
  obs::InvariantAuditor auditor;
  auditor.audit_management(in);
  // Check 4 trips once per corrupt move; the moves also disagree with the
  // fixture's actual placement, so check 8 piles on top — count per check.
  std::size_t check4 = 0;
  for (const std::string& m : auditor.messages()) {
    if (m.find("[check 4]") != std::string::npos) ++check4;
  }
  EXPECT_EQ(check4, 4u);
  EXPECT_GE(auditor.violation_count(), 4u);
}

// Check 8: a VM committed by two shims in one round (a failed cross-shard
// claim resolution) and a destination overfed beyond its headroom must
// both trip, while a move list matching the actual placement stays clean.
TEST(AuditorDetects, ShardCommitDoubleMoveAndOverfedHost) {
  AuditFixture fx(fat_tree());
  const auto hosts = fx.topology->nodes_of_kind(topo::NodeKind::kHost);
  const auto count_check8 = [](const obs::InvariantAuditor& auditor) {
    std::size_t n = 0;
    for (const std::string& m : auditor.messages()) {
      if (m.find("[check 8]") != std::string::npos) ++n;
    }
    return n;
  };

  // A clean commit: one VM, reported exactly where the deployment has it.
  {
    const wl::VmId vm = fx.deployment.vms_on_host(hosts[0]).front();
    std::vector<obs::AuditedMove> moves{
        {vm, hosts[1], fx.deployment.vm(vm).host, 1.0, 1.0, 0.1}};
    auto in = fx.inputs();
    in.moves = moves;
    obs::InvariantAuditor auditor;
    auditor.audit_management(in);
    EXPECT_EQ(count_check8(auditor), 0u)
        << (auditor.messages().empty() ? "" : auditor.messages().front());
  }

  // The same VM committed twice — exclusivity must trip exactly once.
  {
    const wl::VmId vm = fx.deployment.vms_on_host(hosts[0]).front();
    const topo::NodeId home = fx.deployment.vm(vm).host;
    std::vector<obs::AuditedMove> moves{{vm, hosts[1], home, 1.0, 1.0, 0.1},
                                        {vm, hosts[2], home, 1.0, 1.0, 0.1}};
    auto in = fx.inputs();
    in.moves = moves;
    obs::InvariantAuditor auditor;
    auditor.audit_management(in);
    EXPECT_EQ(count_check8(auditor), 1u);
    EXPECT_NE(auditor.messages().front().find("more than one shim"), std::string::npos);
  }

  // Incoming capacity beyond what the destination could ever hold: feed
  // one host more VMs than host_capacity admits in a single round.
  {
    std::vector<obs::AuditedMove> moves;
    int fed = 0;
    for (topo::NodeId h : hosts) {
      if (h == hosts[0]) continue;
      for (wl::VmId vm : fx.deployment.vms_on_host(h)) {
        moves.push_back({vm, h, hosts[0], 1.0, 1.0, 0.1});
        fed += fx.deployment.vm(vm).capacity;
      }
      if (fed > fx.deployment.host_capacity()) break;
    }
    ASSERT_GT(fed, fx.deployment.host_capacity());
    auto in = fx.inputs();
    in.moves = moves;
    obs::InvariantAuditor auditor;
    auditor.audit_management(in);
    EXPECT_GE(count_check8(auditor), 1u);
    bool saw_headroom = false;
    for (const std::string& m : auditor.messages()) {
      saw_headroom |= m.find("more than it can hold") != std::string::npos;
    }
    EXPECT_TRUE(saw_headroom);
  }
}

TEST(AuditorDetects, FailFastThrowsOnFirstViolation) {
  AuditFixture fx(fat_tree());
  fx.shares.flow_rate[0] = 1e6;
  obs::AuditOptions options;
  options.fail_fast = true;
  obs::InvariantAuditor auditor(options);
  EXPECT_THROW(auditor.audit_network(fx.inputs()), sc::RequirementError);
  EXPECT_EQ(auditor.violation_count(), 1u);  // stopped at the first
}

TEST(AuditorDetects, MessageRetentionIsCappedButCountIsNot) {
  AuditFixture fx(fat_tree());
  for (double& rate : fx.shares.flow_rate) rate = 1e6;  // many violations
  obs::AuditOptions options;
  options.max_messages = 2;
  obs::InvariantAuditor auditor(options);
  auditor.audit_network(fx.inputs());
  EXPECT_EQ(auditor.messages().size(), 2u);
  EXPECT_GT(auditor.violation_count(), 2u);
}

TEST(AuditorDetects, ViolationsReachTraceAndRegistry) {
  AuditFixture fx(fat_tree());
  fx.shares.flow_rate[0] = 1e6;
  obs::EventTrace trace(1, 64);
  obs::MetricRegistry registry;
  obs::InvariantAuditor auditor;
  auditor.attach(&trace, &registry);
  auditor.audit_network(fx.inputs());
  ASSERT_GE(auditor.violation_count(), 1u);

  const obs::Counter* counter = registry.find_counter("auditor.violations");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), auditor.violation_count());

  std::size_t traced = 0;
  for (const auto& r : trace.snapshot()) {
    if (r.type == obs::EventType::kInvariantViolation) {
      ++traced;
      EXPECT_EQ(r.shim, obs::EventTrace::kEngine);
      EXPECT_GE(r.a, 1u);  // check id
      EXPECT_LE(r.a, 7u);
    }
  }
  EXPECT_EQ(traced, auditor.violation_count());
}
