// Unit tests for the common substrate: PRNG, statistics, math helpers,
// tables, plots, and the thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/ascii_plot.hpp"
#include "common/math_util.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace sc = sheriff::common;

TEST(Require, ThrowsWithContext) {
  try {
    SHERIFF_REQUIRE(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const sc::RequirementError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Pcg32, DeterministicForSameSeed) {
  sc::Pcg32 a(123, 7);
  sc::Pcg32 b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, StreamsDiffer) {
  sc::Pcg32 a(123, 1);
  sc::Pcg32 b(123, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32, NextBelowIsInRangeAndCoversAll) {
  sc::Pcg32 rng(5);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (int count : seen) EXPECT_GT(count, 700);  // roughly uniform
}

TEST(Pcg32, NormalMoments) {
  sc::Pcg32 rng(99);
  sc::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Pcg32, ExponentialMean) {
  sc::Pcg32 rng(7);
  sc::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Pcg32, PoissonMean) {
  sc::Pcg32 rng(11);
  sc::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.poisson(3.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(Pcg32, ShuffleIsPermutation) {
  sc::Pcg32 rng(3);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values, shuffled);
}

TEST(Pcg32, UniformIntBoundsInclusive) {
  sc::Pcg32 rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, SplitStreamsAreIndependent) {
  sc::Pcg32 parent(42);
  auto child1 = parent.split();
  auto child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u32() == child2.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  sc::RunningStats stats;
  for (double x : xs) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  EXPECT_NEAR(stats.variance(), 29.76, 1e-9);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 16.0);
  EXPECT_EQ(stats.count(), 5u);
}

TEST(RunningStats, MergeEqualsCombined) {
  sc::Pcg32 rng(8);
  sc::RunningStats a;
  sc::RunningStats b;
  sc::RunningStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(sc::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sc::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(sc::quantile(xs, 0.5), 2.5);
}

// Regression: 0- and 1-sample inputs used to hit the size()-1 index math
// (an empty span wrapped past the end). They are ordinary inputs for the
// fleet aggregator — a metric that only one run reports still has a p99 —
// so both must be well-defined for every q in [0,1].
TEST(Stats, QuantileDegenerateInputs) {
  const std::vector<double> empty;
  const std::vector<double> one{7.25};
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(sc::quantile(empty, q), 0.0) << "q=" << q;
    EXPECT_DOUBLE_EQ(sc::quantile(one, q), 7.25) << "q=" << q;
  }
  EXPECT_THROW(sc::quantile(one, -0.1), sc::RequirementError);
  EXPECT_THROW(sc::quantile(one, 1.1), sc::RequirementError);
}

TEST(Stats, CorrelationSigns) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> up{2, 4, 6, 8, 10};
  std::vector<double> down(up.rbegin(), up.rend());
  EXPECT_NEAR(sc::correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(sc::correlation(xs, down), -1.0, 1e-12);
  const std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(sc::correlation(xs, flat), 0.0);
}

TEST(Histogram, CountsAndClamps) {
  sc::Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps into bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(42.0);  // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_FALSE(h.render().empty());
}

TEST(MathUtil, ErrorsMatchHandComputation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_NEAR(sc::mean_squared_error(a, b), (1.0 + 0.0 + 4.0) / 3.0, 1e-12);
  EXPECT_NEAR(sc::mean_absolute_error(a, b), 1.0, 1e-12);
  EXPECT_NEAR(sc::root_mean_squared_error(a, b), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(MathUtil, MapeSkipsNearZero) {
  const std::vector<double> a{0.0, 10.0};
  const std::vector<double> b{5.0, 11.0};
  EXPECT_NEAR(sc::mean_absolute_percentage_error(a, b), 10.0, 1e-9);
}

TEST(MathUtil, Linspace) {
  const auto xs = sc::linspace(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
}

TEST(Table, RendersAlignedAndCsv) {
  sc::Table table({"name", "value"});
  table.begin_row().add("alpha").add(1.5, 2);
  table.begin_row().add("b,c").add(std::size_t{7});
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.cell(0, 1), "1.50");
  std::ostringstream text;
  table.print(text);
  EXPECT_NE(text.str().find("alpha"), std::string::npos);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("\"b,c\""), std::string::npos);
}

TEST(Table, RejectsOverfilledRow) {
  sc::Table table({"only"});
  table.begin_row().add("x");
  EXPECT_THROW(table.add("y"), sc::RequirementError);
}

TEST(AsciiPlot, RendersSeries) {
  std::vector<double> rising(100);
  std::iota(rising.begin(), rising.end(), 0.0);
  sc::PlotOptions options;
  options.title = "test";
  options.series_names = {"up"};
  const auto chart = sc::render_plot(rising, options);
  EXPECT_NE(chart.find("test"), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
}

TEST(AsciiPlot, HandlesConstantSeries) {
  const std::vector<double> flat(10, 5.0);
  EXPECT_FALSE(sc::render_plot(flat, {}).empty());
  EXPECT_FALSE(sc::sparkline(flat).empty());
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  sc::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  sc::parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  sc::ThreadPool pool(2);
  EXPECT_THROW(sc::parallel_for(pool, 10,
                                [](std::size_t i) {
                                  if (i == 7) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsValue) {
  sc::ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

// A parallel_for issued from a worker of the same pool must run inline
// (the reentrancy guard, DESIGN.md §12). Before the guard, this exact
// shape deadlocked on a size-1 pool: the outer task occupied the only
// worker while the inner iterations waited in the queue forever.
TEST(ThreadPool, NestedParallelForOnOwnPoolRunsInline) {
  sc::ThreadPool pool(1);
  std::atomic<int> inner_sum{0};
  std::atomic<bool> saw_worker_thread{false};
  sc::parallel_for(pool, 2, [&](std::size_t) {
    if (pool.on_worker_thread()) saw_worker_thread.store(true);
    sc::parallel_for(pool, 100, [&](std::size_t i) {
      inner_sum.fetch_add(static_cast<int>(i));
    });
  });
  EXPECT_TRUE(saw_worker_thread.load());
  EXPECT_EQ(inner_sum.load(), 2 * (99 * 100) / 2);
  // From a non-worker thread the same pool reports false and the guard
  // stays out of the way.
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ThreadPool, ReentrancyGuardDistinguishesPools) {
  // Two-level mode: a worker of the outer pool fanning out on a *different*
  // inner pool must really use the inner pool's workers, not inline.
  sc::ThreadPool outer(1);
  sc::ThreadPool inner(2);
  std::atomic<int> ran_on_inner_worker{0};
  sc::parallel_for(outer, 1, [&](std::size_t) {
    sc::parallel_for(inner, 64, [&](std::size_t) {
      if (inner.on_worker_thread()) ran_on_inner_worker.fetch_add(1);
    });
  });
  EXPECT_EQ(ran_on_inner_worker.load(), 64);
}
