// Time-series toolkit tests: lag/difference operators, ACF/PACF, the
// Nelder–Mead optimizer, process simulators, and the dynamic model
// selector (Eq. 14).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/math_util.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "timeseries/acf.hpp"
#include "timeseries/model_selection.hpp"
#include "timeseries/optimize.hpp"
#include "timeseries/series_ops.hpp"
#include "timeseries/simulate.hpp"

namespace ts = sheriff::ts;
namespace sc = sheriff::common;

TEST(SeriesOps, FirstDifference) {
  const std::vector<double> xs{1.0, 3.0, 6.0, 10.0};
  const auto d = ts::difference(xs, 1);
  EXPECT_EQ(d, (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(SeriesOps, SecondDifference) {
  const std::vector<double> xs{1.0, 3.0, 6.0, 10.0, 15.0};
  const auto d = ts::difference(xs, 2);
  EXPECT_EQ(d, (std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(SeriesOps, IntegrateInvertsDifferenceD1) {
  sc::Pcg32 rng(4);
  const auto original = ts::simulate_random_walk(10.0, 0.1, 1.0, 50, rng);
  const auto diffed = ts::difference(original, 1);
  // Continue: integrate the last 10 increments from the matching tail.
  const std::vector<double> tail{original[39]};
  const std::vector<double> increments(diffed.begin() + 39, diffed.end());
  const auto rebuilt = ts::integrate(increments, tail, 1);
  ASSERT_EQ(rebuilt.size(), 10u);
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_NEAR(rebuilt[i], original[40 + i], 1e-9);
  }
}

TEST(SeriesOps, IntegrateInvertsDifferenceD2) {
  // Quadratic: second difference is constant 2.
  std::vector<double> xs;
  for (int t = 0; t < 30; ++t) xs.push_back(static_cast<double>(t * t));
  const auto d2 = ts::difference(xs, 2);
  const std::vector<double> tail{xs[18], xs[19]};
  const std::vector<double> increments(d2.begin() + 18, d2.end());
  const auto rebuilt = ts::integrate(increments, tail, 2);
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_NEAR(rebuilt[i], xs[20 + i], 1e-9);
  }
}

TEST(SeriesOps, DemeanCentersSeries) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  double mean = 0.0;
  const auto centered = ts::demean(xs, &mean);
  EXPECT_DOUBLE_EQ(mean, 4.0);
  EXPECT_NEAR(sc::mean(centered), 0.0, 1e-12);
}

TEST(Acf, WhiteNoiseIsUncorrelated) {
  sc::Pcg32 rng(10);
  const auto z = ts::simulate_arma({}, {}, 0.0, 1.0, 4000, rng);
  const auto r = ts::autocorrelation(z, 5);
  for (double rk : r) EXPECT_LT(std::fabs(rk), 0.05);
}

TEST(Acf, Ar1DecaysGeometrically) {
  sc::Pcg32 rng(11);
  const double phi = 0.7;
  const auto x = ts::simulate_arma({phi}, {}, 0.0, 1.0, 20000, rng);
  const auto r = ts::autocorrelation(x, 3);
  EXPECT_NEAR(r[0], phi, 0.05);
  EXPECT_NEAR(r[1], phi * phi, 0.05);
  EXPECT_NEAR(r[2], phi * phi * phi, 0.06);
}

TEST(Acf, ConstantSeriesGivesZeros) {
  const std::vector<double> flat(100, 3.0);
  for (double rk : ts::autocorrelation(flat, 4)) EXPECT_DOUBLE_EQ(rk, 0.0);
}

TEST(Pacf, Ar2CutsOffAfterLag2) {
  sc::Pcg32 rng(12);
  const auto x = ts::simulate_arma({0.5, 0.3}, {}, 0.0, 1.0, 20000, rng);
  const auto pacf = ts::partial_autocorrelation(x, 5);
  EXPECT_GT(std::fabs(pacf[0]), 0.3);
  EXPECT_NEAR(pacf[1], 0.3, 0.06);  // phi_22 ≈ phi_2 for AR(2)
  for (int k = 2; k < 5; ++k) EXPECT_LT(std::fabs(pacf[k]), 0.05);
}

TEST(LjungBox, SeparatesNoiseFromSignal) {
  sc::Pcg32 rng(13);
  const auto noise = ts::simulate_arma({}, {}, 0.0, 1.0, 1000, rng);
  const auto ar = ts::simulate_arma({0.8}, {}, 0.0, 1.0, 1000, rng);
  // chi^2(10) 99th percentile is ~23.2.
  EXPECT_LT(ts::ljung_box(noise, 10), 30.0);
  EXPECT_GT(ts::ljung_box(ar, 10), 100.0);
}

TEST(Stationarity, RandomWalkLooksNonStationary) {
  sc::Pcg32 rng(14);
  const auto walk = ts::simulate_random_walk(0.0, 0.0, 1.0, 2000, rng);
  EXPECT_FALSE(ts::looks_stationary(walk));
  const auto diffed = ts::difference(walk, 1);
  EXPECT_TRUE(ts::looks_stationary(diffed));
}

TEST(NelderMead, MinimizesQuadraticBowl) {
  const auto result = ts::nelder_mead(
      [](const std::vector<double>& x) {
        const double a = x[0] - 3.0;
        const double b = x[1] + 1.0;
        return a * a + 2.0 * b * b;
      },
      {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 3.0, 1e-4);
  EXPECT_NEAR(result.x[1], -1.0, 1e-4);
}

TEST(NelderMead, RespectsInfinityConstraints) {
  // Reject x < 0; optimum of (x-(-2))^2 restricted to x >= 0 is x = 0.
  const auto result = ts::nelder_mead(
      [](const std::vector<double>& x) {
        if (x[0] < 0.0) return std::numeric_limits<double>::infinity();
        return (x[0] + 2.0) * (x[0] + 2.0);
      },
      {1.0});
  EXPECT_NEAR(result.x[0], 0.0, 1e-3);
}

TEST(Simulate, SineHasRequestedPeriod) {
  sc::Pcg32 rng(15);
  const auto s = ts::simulate_sine(2.0, 50.0, 0.0, 200, rng);
  EXPECT_NEAR(s[0], 0.0, 1e-9);
  EXPECT_NEAR(s[25], 0.0, 1e-9);   // half period
  EXPECT_NEAR(s[12], 2.0, 0.1);    // quarter period peak-ish
}

TEST(Selector, PicksTheBetterModelOnLinearData) {
  sc::Pcg32 rng(16);
  // AR(1)-ish workload: ARIMA should win over the naive floor.
  const auto series = ts::simulate_arma({0.8}, {}, 1.0, 0.3, 400, rng);
  const std::vector<double> train(series.begin(), series.begin() + 300);

  ts::DynamicModelSelector selector(24);
  selector.add_model(ts::make_arima_forecaster(1, 0, 0));
  selector.add_model(ts::make_naive_forecaster());
  selector.fit(train);

  std::vector<double> history = train;
  for (std::size_t t = 300; t < series.size(); ++t) {
    (void)selector.predict_next(history);
    selector.observe(series[t]);
    history.push_back(series[t]);
  }
  // The ARIMA candidate (index 0) must end up with the lower windowed MSE.
  EXPECT_EQ(selector.best_model(), 0u);
  EXPECT_LT(selector.fitness(0), selector.fitness(1));
  EXPECT_GT(selector.selection_counts()[0], selector.selection_counts()[1]);
}

TEST(Selector, RequiresFitBeforePredict) {
  ts::DynamicModelSelector selector(8);
  selector.add_model(ts::make_naive_forecaster());
  const std::vector<double> h{1.0, 2.0};
  EXPECT_THROW(selector.predict_next(h), sc::RequirementError);
}

TEST(Selector, ObserveWithoutPendingThrows) {
  ts::DynamicModelSelector selector(8);
  selector.add_model(ts::make_naive_forecaster());
  selector.fit(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_THROW(selector.observe(1.0), sc::RequirementError);
}

TEST(Selector, ForecastDelegatesToBestModel) {
  ts::DynamicModelSelector selector(8);
  selector.add_model(ts::make_naive_forecaster());
  selector.fit(std::vector<double>{1.0, 2.0, 3.0});
  const std::vector<double> h{5.0, 6.0, 7.0};
  const auto f = selector.forecast(h, 3);
  ASSERT_EQ(f.size(), 3u);
  for (double v : f) EXPECT_DOUBLE_EQ(v, 7.0);  // naive repeats the last value
}
