// Graph substrate tests: adjacency graph, Floyd–Warshall vs Dijkstra
// cross-checks on random graphs, Hungarian matching vs brute force, and
// the PRIORITY knapsack.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/dijkstra.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/graph.hpp"
#include "graph/knapsack.hpp"
#include "graph/matching.hpp"

namespace sg = sheriff::graph;
namespace sc = sheriff::common;

namespace {

/// Connected random graph: a random spanning tree plus extra edges.
sg::Graph random_connected_graph(std::size_t n, std::size_t extra_edges, sc::Pcg32& rng) {
  sg::Graph g(n);
  for (sg::Vertex v = 1; v < n; ++v) {
    const auto parent = static_cast<sg::Vertex>(rng.next_below(v));
    g.add_edge(v, parent, rng.uniform(0.1, 10.0));
  }
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const auto a = static_cast<sg::Vertex>(rng.next_below(static_cast<std::uint32_t>(n)));
    const auto b = static_cast<sg::Vertex>(rng.next_below(static_cast<std::uint32_t>(n)));
    if (a != b) g.add_edge(a, b, rng.uniform(0.1, 10.0));
  }
  return g;
}

}  // namespace

TEST(Graph, BasicAccounting) {
  sg::Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
  EXPECT_EQ(g.component_count(), 1u);
}

TEST(Graph, ParallelEdgesKeepMinWeight) {
  sg::Graph g(2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(g.min_edge_weight(0, 1), 2.0);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Graph, RejectsInvalidEdges) {
  sg::Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), sc::RequirementError);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), sc::RequirementError);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), sc::RequirementError);
}

TEST(Graph, ComponentCount) {
  sg::Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_EQ(g.component_count(), 3u);  // {0,1}, {2,3}, {4}
}

TEST(DistanceMatrix, TriangleViolationDetection) {
  sg::DistanceMatrix m(3, 0.0);
  m.set_symmetric(0, 1, 1.0);
  m.set_symmetric(1, 2, 1.0);
  m.set_symmetric(0, 2, 5.0);  // violates: 5 > 1 + 1
  EXPECT_NEAR(m.max_triangle_violation(), 3.0, 1e-12);
  m.set_symmetric(0, 2, 2.0);
  EXPECT_NEAR(m.max_triangle_violation(), 0.0, 1e-12);
}

TEST(FloydWarshall, TinyGraphByHand) {
  sg::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 1.0);
  const auto apsp = sg::floyd_warshall(g);
  EXPECT_DOUBLE_EQ(apsp.distance.at(0, 2), 3.0);  // via 1
  EXPECT_DOUBLE_EQ(apsp.distance.at(0, 3), 4.0);
  const auto path = apsp.path(0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
}

TEST(FloydWarshall, UnreachableStaysInfinite) {
  sg::Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto apsp = sg::floyd_warshall(g);
  EXPECT_EQ(apsp.distance.at(0, 2), sg::kInfiniteDistance);
  EXPECT_TRUE(apsp.path(0, 2).empty());
}

class ApspCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(ApspCrossCheck, FloydWarshallMatchesDijkstra) {
  sc::Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 20 + rng.next_below(20);
  const auto g = random_connected_graph(n, n, rng);
  const auto apsp = sg::floyd_warshall(g);
  for (sg::Vertex src = 0; src < n; src += 3) {
    const auto tree = sg::dijkstra(g, src);
    for (sg::Vertex dst = 0; dst < n; ++dst) {
      EXPECT_NEAR(apsp.distance.at(src, dst), tree.distance[dst], 1e-9);
    }
  }
}

TEST_P(ApspCrossCheck, ReconstructedPathsHaveStatedLength) {
  sc::Pcg32 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const std::size_t n = 15;
  const auto g = random_connected_graph(n, 10, rng);
  const auto apsp = sg::floyd_warshall(g);
  for (sg::Vertex a = 0; a < n; ++a) {
    for (sg::Vertex b = 0; b < n; ++b) {
      const auto path = apsp.path(a, b);
      ASSERT_FALSE(path.empty());
      double length = 0.0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        length += g.min_edge_weight(path[i], path[i + 1]);
      }
      EXPECT_NEAR(length, apsp.distance.at(a, b), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspCrossCheck, ::testing::Range(1, 8));

TEST(Dijkstra, BlockedNodesAreAvoided) {
  // 0 - 1 - 3 and 0 - 2 - 3 (longer); block 1 and the route must detour.
  sg::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(2, 3, 2.0);
  std::vector<bool> blocked(4, false);
  blocked[1] = true;
  const auto tree = sg::dijkstra(g, 0, blocked);
  EXPECT_DOUBLE_EQ(tree.distance[3], 4.0);
  const auto path = tree.path_to(3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 2u);
}

TEST(Dijkstra, CountsEqualCostPaths) {
  // Diamond with two equal shortest paths.
  sg::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto tree = sg::dijkstra(g, 0);
  EXPECT_EQ(tree.path_count(3), 2u);
}

class MatchingCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(MatchingCrossCheck, HungarianMatchesBruteForce) {
  sc::Pcg32 rng(static_cast<std::uint64_t>(GetParam()) * 77 + 5);
  const std::size_t rows = 2 + rng.next_below(4);  // 2..5
  const std::size_t cols = rows + rng.next_below(3);
  sg::AssignmentProblem problem(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.next_double() < 0.15) continue;  // leave forbidden
      problem.set_cost(r, c, rng.uniform(0.0, 100.0));
    }
  }
  const auto fast = sg::solve_assignment(problem);
  const auto slow = sg::solve_assignment_brute_force(problem);
  EXPECT_EQ(fast.matched_count, slow.matched_count);
  EXPECT_NEAR(fast.total_cost, slow.total_cost, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingCrossCheck, ::testing::Range(1, 25));

TEST(Matching, AssignmentIsInjective) {
  sc::Pcg32 rng(31);
  sg::AssignmentProblem problem(6, 8);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 8; ++c) problem.set_cost(r, c, rng.uniform(1.0, 9.0));
  }
  const auto result = sg::solve_assignment(problem);
  EXPECT_EQ(result.matched_count, 6u);
  std::vector<bool> used(8, false);
  for (std::size_t col : result.assignment) {
    ASSERT_NE(col, sg::AssignmentResult::kUnassigned);
    EXPECT_FALSE(used[col]);
    used[col] = true;
  }
}

TEST(Matching, AllForbiddenMeansUnmatched) {
  sg::AssignmentProblem problem(2, 3);
  const auto result = sg::solve_assignment(problem);
  EXPECT_EQ(result.matched_count, 0u);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST(Matching, PicksCheaperOfTwo) {
  sg::AssignmentProblem problem(1, 2);
  problem.set_cost(0, 0, 10.0);
  problem.set_cost(0, 1, 3.0);
  const auto result = sg::solve_assignment(problem);
  EXPECT_EQ(result.assignment[0], 1u);
  EXPECT_DOUBLE_EQ(result.total_cost, 3.0);
}

TEST(Knapsack, PrefersMaxCapacityThenMinValue) {
  // Budget 10: {6,4} offloads 10 at value 5+1=6; beats {6} alone etc.
  const std::vector<sg::KnapsackItem> items{{6, 5.0}, {4, 1.0}, {9, 0.5}};
  const auto sel = sg::min_value_knapsack(items, 10);
  EXPECT_EQ(sel.total_capacity, 10u);
  EXPECT_DOUBLE_EQ(sel.total_value, 6.0);
  EXPECT_EQ(sel.chosen.size(), 2u);
}

TEST(Knapsack, BreaksCapacityTiesByValue) {
  // Two ways to reach 8: {8@9.0} or {5@1, 3@2}=3.0 — the cheap pair wins.
  const std::vector<sg::KnapsackItem> items{{8, 9.0}, {5, 1.0}, {3, 2.0}};
  const auto sel = sg::min_value_knapsack(items, 8);
  EXPECT_EQ(sel.total_capacity, 8u);
  EXPECT_DOUBLE_EQ(sel.total_value, 3.0);
}

TEST(Knapsack, EmptyAndOversizedItems) {
  EXPECT_TRUE(sg::min_value_knapsack({}, 5).chosen.empty());
  const std::vector<sg::KnapsackItem> items{{10, 1.0}};
  const auto sel = sg::min_value_knapsack(items, 5);  // does not fit
  EXPECT_TRUE(sel.chosen.empty());
  EXPECT_EQ(sel.total_capacity, 0u);
}

TEST(Knapsack, ReconstructionIsConsistent) {
  sc::Pcg32 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<sg::KnapsackItem> items;
    const std::size_t n = 3 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back({1 + rng.next_below(12), rng.uniform(0.0, 10.0)});
    }
    const std::size_t budget = 5 + rng.next_below(30);
    const auto sel = sg::min_value_knapsack(items, budget);
    std::size_t cap = 0;
    double value = 0.0;
    std::vector<bool> used(n, false);
    for (std::size_t idx : sel.chosen) {
      ASSERT_LT(idx, n);
      EXPECT_FALSE(used[idx]);  // 0/1: no duplicates
      used[idx] = true;
      cap += items[idx].capacity;
      value += items[idx].value;
    }
    EXPECT_EQ(cap, sel.total_capacity);
    EXPECT_NEAR(value, sel.total_value, 1e-9);
    EXPECT_LE(cap, budget);
  }
}
