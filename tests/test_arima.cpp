// ARIMA estimation and forecasting tests: parameter recovery on simulated
// processes, forecast sanity on deterministic signals, one-step prediction
// consistency, and Box–Jenkins automatic order selection.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/box_jenkins.hpp"
#include "timeseries/simulate.hpp"

namespace ts = sheriff::ts;
namespace sc = sheriff::common;

TEST(LagPolynomial, StabilityConditions) {
  EXPECT_TRUE(ts::lag_polynomial_is_stable(std::vector<double>{}));
  EXPECT_TRUE(ts::lag_polynomial_is_stable(std::vector<double>{0.9}));
  EXPECT_FALSE(ts::lag_polynomial_is_stable(std::vector<double>{1.1}));
  EXPECT_TRUE(ts::lag_polynomial_is_stable(std::vector<double>{0.5, 0.3}));
  EXPECT_FALSE(ts::lag_polynomial_is_stable(std::vector<double>{0.9, 0.3}));  // sum > 1
  // Order 3: x_t = 0.3 x_{t-1} + 0.3 x_{t-2} + 0.3 x_{t-3} is stable.
  EXPECT_TRUE(ts::lag_polynomial_is_stable(std::vector<double>{0.3, 0.3, 0.3}));
  EXPECT_FALSE(ts::lag_polynomial_is_stable(std::vector<double>{0.5, 0.4, 0.3}));
}

TEST(Arima, RecoversAr1Coefficient) {
  sc::Pcg32 rng(21);
  const double phi = 0.65;
  const auto x = ts::simulate_arma({phi}, {}, 0.5, 1.0, 3000, rng);
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 0});
  model.fit(x);
  ASSERT_EQ(model.ar_coefficients().size(), 1u);
  EXPECT_NEAR(model.ar_coefficients()[0], phi, 0.05);
  EXPECT_NEAR(model.innovation_variance(), 1.0, 0.1);
}

TEST(Arima, RecoversMa1Coefficient) {
  sc::Pcg32 rng(22);
  const double theta = 0.5;
  const auto x = ts::simulate_arma({}, {theta}, 0.0, 1.0, 4000, rng);
  ts::ArimaModel model(ts::ArimaOrder{0, 0, 1});
  model.fit(x);
  ASSERT_EQ(model.ma_coefficients().size(), 1u);
  EXPECT_NEAR(model.ma_coefficients()[0], theta, 0.07);
}

TEST(Arima, RecoversArma11) {
  sc::Pcg32 rng(23);
  const auto x = ts::simulate_arma({0.6}, {0.3}, 0.0, 1.0, 6000, rng);
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 1});
  model.fit(x);
  EXPECT_NEAR(model.ar_coefficients()[0], 0.6, 0.08);
  EXPECT_NEAR(model.ma_coefficients()[0], 0.3, 0.1);
}

TEST(Arima, LinearTrendForecastWithD1) {
  // Y_t = 5 + 2t: first difference is constant 2, so an ARIMA(0,1,0)-like
  // fit must forecast the trend exactly.
  std::vector<double> xs;
  for (int t = 0; t < 80; ++t) xs.push_back(5.0 + 2.0 * t);
  ts::ArimaModel model(ts::ArimaOrder{0, 1, 0});
  model.fit(xs);
  const auto f = model.forecast(xs, 5);
  ASSERT_EQ(f.size(), 5u);
  for (std::size_t h = 0; h < 5; ++h) {
    EXPECT_NEAR(f[h], 5.0 + 2.0 * (80.0 + static_cast<double>(h)), 1e-6);
  }
}

TEST(Arima, KStepForecastConvergesToProcessMean) {
  sc::Pcg32 rng(24);
  const double phi = 0.5;
  const double c = 2.0;  // process mean = c / (1 - phi) = 4
  const auto x = ts::simulate_arma({phi}, {}, c, 1.0, 4000, rng);
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 0});
  model.fit(x);
  const auto f = model.forecast(x, 200);
  EXPECT_NEAR(f.back(), 4.0, 0.3);
}

TEST(Arima, OneStepPredictionsBeatNaiveOnAr) {
  sc::Pcg32 rng(25);
  const auto x = ts::simulate_arma({0.8}, {}, 0.0, 1.0, 1500, rng);
  const std::vector<double> train(x.begin(), x.begin() + 1000);
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 0});
  model.fit(train);

  const auto preds = model.one_step_predictions(x, 1000);
  ASSERT_EQ(preds.size(), 500u);
  std::vector<double> actual(x.begin() + 1000, x.end());
  std::vector<double> naive(x.begin() + 999, x.end() - 1);
  const double model_mse = sc::mean_squared_error(actual, preds);
  const double naive_mse = sc::mean_squared_error(actual, naive);
  EXPECT_LT(model_mse, naive_mse);
  // Theoretical one-step MSE is sigma^2 = 1.
  EXPECT_NEAR(model_mse, 1.0, 0.15);
}

TEST(Arima, ForecastBeforeFitThrows) {
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 0});
  const std::vector<double> h{1.0, 2.0, 3.0};
  EXPECT_THROW((void)model.forecast(h, 1), sc::RequirementError);
}

TEST(Arima, TooShortSeriesThrows) {
  ts::ArimaModel model(ts::ArimaOrder{2, 1, 2});
  const std::vector<double> tiny{1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(model.fit(tiny), sc::RequirementError);
}

TEST(Arima, RejectsAbsurdOrders) {
  EXPECT_THROW(ts::ArimaModel(ts::ArimaOrder{-1, 0, 0}), sc::RequirementError);
  EXPECT_THROW(ts::ArimaModel(ts::ArimaOrder{20, 0, 0}), sc::RequirementError);
  EXPECT_THROW(ts::ArimaModel(ts::ArimaOrder{1, 9, 1}), sc::RequirementError);
}

TEST(Arima, AiccPrefersTrueOrderOverOverfit) {
  sc::Pcg32 rng(26);
  const auto x = ts::simulate_arma({0.7}, {}, 0.0, 1.0, 2000, rng);
  ts::ArimaModel right(ts::ArimaOrder{1, 0, 0});
  right.fit(x);
  ts::ArimaModel heavy(ts::ArimaOrder{3, 0, 3});
  heavy.fit(x);
  EXPECT_LT(right.aicc(), heavy.aicc() + 2.0);  // parsimony should not lose badly
}

TEST(BoxJenkins, SelectsDifferencingForRandomWalk) {
  sc::Pcg32 rng(27);
  const auto walk = ts::simulate_random_walk(0.0, 0.05, 1.0, 1500, rng);
  EXPECT_EQ(ts::select_differencing_order(walk, 2), 1);
  const auto stationary = ts::simulate_arma({0.4}, {}, 0.0, 1.0, 1500, rng);
  EXPECT_EQ(ts::select_differencing_order(stationary, 2), 0);
}

TEST(BoxJenkins, SelectionProducesUsableModel) {
  sc::Pcg32 rng(28);
  const auto x = ts::simulate_arma({0.6}, {0.2}, 1.0, 1.0, 800, rng);
  const auto selection = ts::select_arima(x);
  EXPECT_GT(selection.candidates_tried, 5);
  ASSERT_TRUE(selection.model.fitted());
  EXPECT_EQ(selection.model.order().d, 0);
  const auto f = selection.model.forecast(x, 3);
  EXPECT_EQ(f.size(), 3u);
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Arima, PsiWeightsOfAr1AreGeometric) {
  sc::Pcg32 rng(29);
  const double phi = 0.6;
  const auto x = ts::simulate_arma({phi}, {}, 0.0, 1.0, 4000, rng);
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 0});
  model.fit(x);
  const auto psi = model.psi_weights(5);
  const double est = model.ar_coefficients()[0];
  EXPECT_DOUBLE_EQ(psi[0], 1.0);
  for (std::size_t j = 1; j < psi.size(); ++j) {
    EXPECT_NEAR(psi[j], std::pow(est, static_cast<double>(j)), 1e-12);
  }
}

TEST(Arima, IntervalsWidenWithHorizonAndCover) {
  sc::Pcg32 rng(30);
  const auto x = ts::simulate_arma({0.5}, {}, 0.0, 1.0, 3000, rng);
  const std::vector<double> train(x.begin(), x.begin() + 2000);
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 0});
  model.fit(train);

  const auto intervals = model.forecast_with_intervals(train, 10);
  ASSERT_EQ(intervals.size(), 10u);
  for (std::size_t h = 1; h < intervals.size(); ++h) {
    EXPECT_GE(intervals[h].stderr_, intervals[h - 1].stderr_ - 1e-12);  // non-decreasing
    EXPECT_LT(intervals[h].lower, intervals[h].mean);
    EXPECT_GT(intervals[h].upper, intervals[h].mean);
  }
  // One-step stderr ~ sigma = 1; 95% band ~ +-1.96.
  EXPECT_NEAR(intervals[0].stderr_, 1.0, 0.1);

  // Empirical coverage of the one-step 95% interval over the test tail.
  std::size_t covered = 0;
  std::size_t total = 0;
  for (std::size_t t = 2000; t + 1 < x.size(); t += 10) {
    const std::span<const double> history(x.data(), t);
    const auto iv = model.forecast_with_intervals(history, 1).front();
    covered += (x[t] >= iv.lower && x[t] <= iv.upper) ? 1 : 0;
    ++total;
  }
  const double coverage = static_cast<double>(covered) / static_cast<double>(total);
  EXPECT_GT(coverage, 0.88);
  EXPECT_LT(coverage, 1.0);
}

TEST(Arima, IntegratedIntervalsGrowFaster) {
  // For a random walk (d=1) the forecast variance grows linearly in h,
  // much faster than any stationary ARMA's.
  sc::Pcg32 rng(31);
  const auto walk = ts::simulate_random_walk(0.0, 0.0, 1.0, 2000, rng);
  ts::ArimaModel model(ts::ArimaOrder{0, 1, 0});
  model.fit(walk);
  const auto intervals = model.forecast_with_intervals(walk, 9);
  // stderr(h) = sigma * sqrt(h): stderr(9) / stderr(1) = 3.
  EXPECT_NEAR(intervals[8].stderr_ / intervals[0].stderr_, 3.0, 0.05);
}

class ArimaRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ArimaRecovery, Ar1AcrossCoefficients) {
  const double phi = GetParam();
  sc::Pcg32 rng(static_cast<std::uint64_t>(std::llround((phi + 2.0) * 1000)));
  const auto x = ts::simulate_arma({phi}, {}, 0.0, 1.0, 4000, rng);
  ts::ArimaModel model(ts::ArimaOrder{1, 0, 0});
  model.fit(x);
  EXPECT_NEAR(model.ar_coefficients()[0], phi, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Coefficients, ArimaRecovery,
                         ::testing::Values(-0.7, -0.4, -0.1, 0.2, 0.5, 0.8));
