// Fair-share invariant properties, checked against BOTH implementations
// (from-scratch reference and incremental FairShareSolver) on fuzzed flow
// sets, and re-checked on the solver mid-way through a perturbation
// sequence. The invariants are the ones the management layer relies on:
//
//   (1) capacity: no link carries more than its capacity,
//   (2) demand:   no flow exceeds its effective demand,
//   (3) Pareto:   every unsatisfied routed flow crosses a saturated link
//                 (max–min: you cannot raise it without lowering someone).

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/fair_share.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "topology/fat_tree.hpp"
#include "topology/liveness.hpp"

namespace topo = sheriff::topo;
namespace net = sheriff::net;
namespace sc = sheriff::common;

namespace {

topo::Topology small_fat_tree(double tor_agg_gbps) {
  topo::FatTreeOptions options;
  options.pods = 4;
  options.hosts_per_rack = 2;
  options.tor_agg_gbps = tor_agg_gbps;
  return topo::build_fat_tree(options);
}

net::Flow make_flow(net::FlowId id, topo::NodeId src, topo::NodeId dst, double demand) {
  net::Flow f;
  f.id = id;
  f.src_host = src;
  f.dst_host = dst;
  f.demand_gbps = demand;
  return f;
}

std::vector<net::Flow> fuzzed_flows(sc::Pcg32& rng, const topo::Topology& t,
                                    const net::Router& router) {
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows;
  const std::size_t n_flows = 16 + rng.next_below(64);
  for (net::FlowId id = 0; id < n_flows; ++id) {
    const auto a = rng.pick(hosts);
    const auto b = rng.pick(hosts);
    if (a == b) continue;
    auto f = make_flow(id, a, b, rng.uniform(0.0, 2.5));
    if (rng.bernoulli(0.3)) f.rate_limit_gbps = rng.uniform(0.1, 1.0);
    flows.push_back(f);
  }
  router.route_all(flows);
  return flows;
}

/// Asserts invariants (1)–(3) on an allocation. `mask` (optional) makes the
/// Pareto check skip flows zero-rated for crossing a dead link.
void expect_invariants(const topo::Topology& t, const std::vector<net::Flow>& flows,
                       const net::FairShareResult& result, const topo::LivenessMask* mask,
                       const char* which) {
  for (topo::LinkId l = 0; l < t.link_count(); ++l) {
    EXPECT_LE(result.link_load_gbps[l], t.link(l).capacity_gbps + 1e-6)
        << which << ": link " << l << " over capacity";
    EXPECT_GE(result.available_bandwidth(t, l), 0.0) << which;
  }
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_LE(result.flow_rate[f], flows[f].effective_demand() + 1e-9)
        << which << ": flow " << f << " over its demand";
    EXPECT_GE(result.flow_rate[f], 0.0) << which;
    if (!flows[f].routed() || result.flow_rate[f] >= flows[f].effective_demand() - 1e-6) {
      continue;
    }
    const auto& path = flows[f].path;
    bool dead_path = false;
    bool saturated = false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto l = t.link_between(path[i], path[i + 1]);
      if (mask != nullptr && !mask->link_usable(t, l)) dead_path = true;
      if (result.link_load_gbps[l] >= t.link(l).capacity_gbps - 1e-6) saturated = true;
    }
    if (dead_path) {
      EXPECT_NEAR(result.flow_rate[f], 0.0, 1e-12)
          << which << ": flow " << f << " rated over a dead link";
    } else {
      EXPECT_TRUE(saturated) << which << ": flow " << f << " starved without a bottleneck";
    }
  }
}

}  // namespace

class FairShareBothSolvers : public ::testing::TestWithParam<int> {};

TEST_P(FairShareBothSolvers, InvariantsHoldOnFuzzedFlowSets) {
  sc::Pcg32 rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  const auto t = small_fat_tree(rng.bernoulli(0.5) ? 1.0 : 10.0);
  const net::Router router(t);
  auto flows = fuzzed_flows(rng, t, router);

  auto reference_flows = flows;
  const auto reference = net::max_min_fair_share(t, reference_flows);
  expect_invariants(t, reference_flows, reference, nullptr, "reference");

  net::FairShareSolver solver(t);
  expect_invariants(t, flows, solver.solve(flows), nullptr, "incremental");
}

TEST_P(FairShareBothSolvers, InvariantsSurvivePerturbationSequences) {
  sc::Pcg32 rng(static_cast<std::uint64_t>(GetParam()) * 131 + 5);
  const auto t = small_fat_tree(1.0);
  net::Router router(t);
  topo::LivenessMask mask(t);
  router.apply_liveness(&mask);
  auto flows = fuzzed_flows(rng, t, router);

  net::FairShareSolver solver(t);
  const auto aggs = t.nodes_of_kind(topo::NodeKind::kAggSwitch);
  topo::NodeId downed = t.node_count();
  for (std::size_t step = 0; step < 12; ++step) {
    if (!flows.empty() && rng.bernoulli(0.7)) {
      auto& f = flows[rng.next_below(static_cast<std::uint32_t>(flows.size()))];
      f.demand_gbps = rng.uniform(0.0, 3.0);
    }
    if (rng.bernoulli(0.3)) {
      if (downed == t.node_count()) {
        downed = rng.pick(aggs);
        mask.set_node(downed, false);
      } else {
        mask.set_node(downed, true);
        downed = t.node_count();
      }
      router.refresh_liveness();
    }
    expect_invariants(t, flows, solver.solve(flows, &mask), &mask, "incremental");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareBothSolvers, ::testing::Range(0, 16));
