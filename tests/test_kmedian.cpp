// k-median tests: correctness of the cost evaluation, the exhaustive
// optimum, and the central property of the paper's Sec. VI-C — the Alg. 5
// local search never exceeds the 3 + 2/p approximation bound (and in
// practice sits very close to the optimum).

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "graph/kmedian.hpp"

namespace sg = sheriff::graph;
namespace sc = sheriff::common;

namespace {

/// Random metric: points on a plane, Euclidean distances.
sg::DistanceMatrix random_metric(std::size_t n, sc::Pcg32& rng) {
  std::vector<std::pair<double, double>> pts(n);
  for (auto& p : pts) p = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
  sg::DistanceMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      m.set(i, j, std::sqrt(dx * dx + dy * dy));
    }
  }
  return m;
}

sg::KMedianInstance make_instance(const sg::DistanceMatrix& m, std::size_t k) {
  sg::KMedianInstance instance;
  instance.distance = &m;
  instance.k = k;
  for (std::size_t i = 0; i < m.size(); ++i) {
    instance.clients.push_back(i);
    instance.facilities.push_back(i);
  }
  return instance;
}

}  // namespace

TEST(KMedianCost, HandComputedExample) {
  sg::DistanceMatrix m(3, 0.0);
  m.set_symmetric(0, 1, 2.0);
  m.set_symmetric(0, 2, 5.0);
  m.set_symmetric(1, 2, 4.0);
  sg::KMedianInstance instance;
  instance.distance = &m;
  instance.clients = {0, 1, 2};
  instance.facilities = {0, 1, 2};
  instance.k = 1;
  EXPECT_DOUBLE_EQ(sg::kmedian_cost(instance, {0}), 7.0);
  EXPECT_DOUBLE_EQ(sg::kmedian_cost(instance, {1}), 6.0);
  const auto best = sg::exhaustive_kmedian(instance);
  EXPECT_DOUBLE_EQ(best.cost, 6.0);
  EXPECT_EQ(best.medians, std::vector<std::size_t>{1});
}

TEST(KMedian, KEqualsFacilitiesIsFree) {
  sc::Pcg32 rng(5);
  const auto m = random_metric(6, rng);
  auto instance = make_instance(m, 6);
  const auto sol = sg::local_search_kmedian(instance, 1);
  EXPECT_NEAR(sol.cost, 0.0, 1e-9);  // every client is its own median
}

TEST(KMedian, LocalSearchNeverWorseThanInitial) {
  sc::Pcg32 rng(9);
  const auto m = random_metric(12, rng);
  auto instance = make_instance(m, 3);
  std::vector<std::size_t> initial{0, 1, 2};  // the solver's deterministic start
  const double initial_cost = sg::kmedian_cost(instance, initial);
  const auto sol = sg::local_search_kmedian(instance, 1);
  EXPECT_LE(sol.cost, initial_cost + 1e-9);
}

struct RatioCase {
  int seed;
  std::size_t n;
  std::size_t k;
  std::size_t p;
};

class KMedianRatio : public ::testing::TestWithParam<RatioCase> {};

TEST_P(KMedianRatio, WithinPaperBound) {
  const auto param = GetParam();
  sc::Pcg32 rng(static_cast<std::uint64_t>(param.seed));
  const auto m = random_metric(param.n, rng);
  auto instance = make_instance(m, param.k);
  const auto approx = sg::local_search_kmedian(instance, param.p);
  const auto exact = sg::exhaustive_kmedian(instance);
  ASSERT_GT(exact.cost, 0.0);
  const double bound = 3.0 + 2.0 / static_cast<double>(param.p);
  EXPECT_LE(approx.cost, bound * exact.cost + 1e-9)
      << "ratio " << approx.cost / exact.cost << " exceeds 3 + 2/p = " << bound;
  EXPECT_GE(approx.cost, exact.cost - 1e-9);  // cannot beat the optimum
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KMedianRatio,
    ::testing::Values(RatioCase{1, 10, 2, 1}, RatioCase{2, 10, 3, 1}, RatioCase{3, 12, 3, 2},
                      RatioCase{4, 12, 4, 2}, RatioCase{5, 14, 3, 1}, RatioCase{6, 14, 4, 2},
                      RatioCase{7, 9, 2, 3}, RatioCase{8, 11, 3, 3}, RatioCase{9, 13, 2, 2},
                      RatioCase{10, 15, 3, 1}, RatioCase{11, 15, 5, 2},
                      RatioCase{12, 8, 4, 1}));

TEST(KMedian, LargerSwapSizeNeverHurts) {
  // With a larger p the reachable neighborhood strictly contains the
  // smaller one's, so the local optimum cannot be worse on the same
  // deterministic start.
  sc::Pcg32 rng(77);
  const auto m = random_metric(14, rng);
  auto instance = make_instance(m, 4);
  const auto p1 = sg::local_search_kmedian(instance, 1);
  const auto p2 = sg::local_search_kmedian(instance, 2);
  EXPECT_LE(p2.cost, p1.cost + 1e-9);
}

TEST(KMedian, EvaluationCountsGrowWithP) {
  sc::Pcg32 rng(78);
  const auto m = random_metric(14, rng);
  auto instance = make_instance(m, 4);
  const auto p1 = sg::local_search_kmedian(instance, 1);
  const auto p2 = sg::local_search_kmedian(instance, 2);
  EXPECT_GT(p2.evaluations, p1.evaluations / 2);  // p=2 explores at least comparably
}

TEST(KMedian, RejectsBadInstances) {
  sg::DistanceMatrix m(3, 0.0);
  sg::KMedianInstance instance;
  instance.distance = &m;
  instance.clients = {0};
  instance.facilities = {0, 1};
  instance.k = 5;  // k > facilities
  EXPECT_THROW(sg::local_search_kmedian(instance, 1), sc::RequirementError);
  instance.k = 0;
  EXPECT_THROW(sg::local_search_kmedian(instance, 1), sc::RequirementError);
}
