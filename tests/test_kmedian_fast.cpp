// Fast swap-based k-median tests: differential equality against the
// reference Alg. 5 scan (first-improvement trajectory parity), the
// 3 + 2/p bound against the exhaustive optimum, byte-identical parallel
// sweeps across pool sizes (pristine and faulted planners), the
// max_evaluations safety cap, planner refresh semantics, and a
// naive-vs-fast differential of the engine's kKMedian manage phase.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/kmedian_planner.hpp"
#include "graph/kmedian.hpp"
#include "graph/kmedian_fast.hpp"
#include "topology/fat_tree.hpp"
#include "topology/liveness.hpp"

namespace sg = sheriff::graph;
namespace sc = sheriff::common;
namespace core = sheriff::core;
namespace topo = sheriff::topo;
namespace wl = sheriff::wl;

namespace {

/// Random metric: points on a plane, Euclidean distances.
sg::DistanceMatrix random_metric(std::size_t n, sc::Pcg32& rng) {
  std::vector<std::pair<double, double>> pts(n);
  for (auto& p : pts) p = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
  sg::DistanceMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      m.set(i, j, std::sqrt(dx * dx + dy * dy));
    }
  }
  return m;
}

sg::KMedianInstance make_instance(const sg::DistanceMatrix& m, std::size_t k) {
  sg::KMedianInstance instance;
  instance.distance = &m;
  instance.k = k;
  for (std::size_t i = 0; i < m.size(); ++i) {
    instance.clients.push_back(i);
    instance.facilities.push_back(i);
  }
  return instance;
}

const topo::Topology& small_fat_tree() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

}  // namespace

// --- Differential: the fast first-improvement p=1 path replays the
// --- reference scan's trajectory — identical medians and bitwise cost.

TEST(FastKMedianDifferential, FirstImprovementMatchesReferenceAcross50Seeds) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sc::Pcg32 rng(1000 + seed);
    const std::size_t n = 6 + rng.next_below(3);  // 6..8
    const auto m = random_metric(n, rng);
    const std::size_t k = 2 + seed % 3;
    if (k >= n) continue;
    auto instance = make_instance(m, k);
    for (std::size_t p = 1; p <= 3; ++p) {
      const auto reference = sg::local_search_kmedian(instance, p);
      sg::FastKMedianOptions options;
      options.p = p;
      const auto fast = sg::fast_kmedian(instance, options);
      EXPECT_EQ(fast.medians, reference.medians)
          << "seed " << seed << " p " << p << ": median sets diverged";
      EXPECT_EQ(fast.cost, reference.cost)
          << "seed " << seed << " p " << p << ": costs diverged";
    }
  }
}

// --- The 3 + 2/p bound against the exhaustive optimum on <= 8x8
// --- instances, for both swap policies.

TEST(FastKMedianBound, WithinPaperBoundAcross50Seeds) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sc::Pcg32 rng(2000 + seed);
    const std::size_t n = 6 + rng.next_below(3);  // 6..8
    const auto m = random_metric(n, rng);
    const std::size_t k = 2 + seed % 3;
    if (k >= n) continue;
    auto instance = make_instance(m, k);
    const auto exact = sg::exhaustive_kmedian(instance);
    ASSERT_GT(exact.cost, 0.0);
    for (std::size_t p = 1; p <= 2; ++p) {
      const double bound = 3.0 + 2.0 / static_cast<double>(p);
      for (const sg::SwapPolicy policy :
           {sg::SwapPolicy::kFirstImprovement, sg::SwapPolicy::kBestImprovement}) {
        sg::FastKMedianOptions options;
        options.p = p;
        options.policy = policy;
        const auto fast = sg::fast_kmedian(instance, options);
        EXPECT_LE(fast.cost, bound * exact.cost + 1e-9)
            << "seed " << seed << " p " << p << ": ratio " << fast.cost / exact.cost;
        EXPECT_GE(fast.cost, exact.cost - 1e-9);  // cannot beat the optimum
      }
    }
  }
}

// --- Parallel sweeps: byte-identical across pool sizes 1/2/8.

TEST(FastKMedianDeterminism, PoolSizesAgreeBitwise) {
  sc::ThreadPool pool1(1);
  sc::ThreadPool pool2(2);
  sc::ThreadPool pool8(8);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sc::Pcg32 rng(3000 + seed);
    const auto m = random_metric(30, rng);
    auto instance = make_instance(m, 4);
    for (const sg::SwapPolicy policy :
         {sg::SwapPolicy::kFirstImprovement, sg::SwapPolicy::kBestImprovement}) {
      sg::FastKMedianOptions options;
      options.policy = policy;
      options.shard_size = 4;  // force many shards even on small instances
      const auto serial = sg::fast_kmedian(instance, options);
      for (sc::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
        options.pool = pool;
        const auto parallel = sg::fast_kmedian(instance, options);
        EXPECT_EQ(parallel.medians, serial.medians) << "seed " << seed;
        EXPECT_EQ(parallel.cost, serial.cost) << "seed " << seed;
        EXPECT_EQ(parallel.evaluations, serial.evaluations) << "seed " << seed;
      }
      options.pool = nullptr;
    }
  }
}

TEST(FastKMedianDeterminism, PlannerRowsAgreeAcrossPoolSizesPristineAndFaulted) {
  const topo::Topology& topology = small_fat_tree();
  sc::ThreadPool pool2(2);
  sc::ThreadPool pool8(8);

  // Pristine fabric: sharded rows must equal the serial Dijkstra sweep bit
  // for bit (same per-row computation, different shard ownership only) and
  // the Floyd–Warshall reference up to FP summation order.
  const core::KMedianPlanner serial(topology);
  const core::KMedianPlanner reference(topology, /*use_floyd_warshall=*/true);
  for (sc::ThreadPool* pool : {&pool2, &pool8}) {
    core::KMedianPlannerOptions options;
    options.pool = pool;
    const core::KMedianPlanner sharded(topology, options);
    for (topo::RackId r = 0; r < topology.rack_count(); ++r) {
      for (topo::RackId c = 0; c < topology.rack_count(); ++c) {
        EXPECT_EQ(sharded.rack_distances().at(r, c), serial.rack_distances().at(r, c));
        EXPECT_NEAR(sharded.rack_distances().at(r, c), reference.rack_distances().at(r, c),
                    1e-9);
      }
    }
  }

  // Faulted fabric: kill one ToR; rows and the facility set must still be
  // pool-size independent.
  topo::LivenessMask mask(topology);
  mask.set_node(topology.rack(1).tor, false);
  core::KMedianPlannerOptions serial_options;
  serial_options.liveness = &mask;
  const core::KMedianPlanner faulted_serial(topology, serial_options);
  EXPECT_EQ(faulted_serial.facility_racks().size(), topology.rack_count() - 1);
  for (sc::ThreadPool* pool : {&pool2, &pool8}) {
    core::KMedianPlannerOptions options;
    options.pool = pool;
    options.liveness = &mask;
    const core::KMedianPlanner sharded(topology, options);
    EXPECT_EQ(sharded.facility_racks(), faulted_serial.facility_racks());
    for (topo::RackId r = 0; r < topology.rack_count(); ++r) {
      for (topo::RackId c = 0; c < topology.rack_count(); ++c) {
        EXPECT_EQ(sharded.rack_distances().at(r, c), faulted_serial.rack_distances().at(r, c));
      }
    }
  }
}

// --- max_evaluations safety cap.

TEST(FastKMedianCap, ReferenceSolverStopsExactlyAtCap) {
  sc::Pcg32 rng(4000);
  const auto m = random_metric(16, rng);
  auto instance = make_instance(m, 4);
  const auto unlimited = sg::local_search_kmedian(instance, 2);
  ASSERT_GT(unlimited.evaluations, 20u);
  instance.max_evaluations = 20;
  const auto capped = sg::local_search_kmedian(instance, 2);
  EXPECT_TRUE(capped.hit_evaluation_cap);
  EXPECT_LE(capped.evaluations, 20u);
  EXPECT_FALSE(unlimited.hit_evaluation_cap);
  // A capped run never returns worse than its own start, and never better
  // than the full search.
  EXPECT_GE(capped.cost, unlimited.cost - 1e-9);
}

TEST(FastKMedianCap, FastSolverOvershootsByAtMostOneSweep) {
  sc::Pcg32 rng(4001);
  const auto m = random_metric(16, rng);
  auto instance = make_instance(m, 4);
  const auto unlimited = sg::fast_kmedian(instance);
  ASSERT_GT(unlimited.evaluations, 30u);
  EXPECT_FALSE(unlimited.hit_evaluation_cap);
  instance.max_evaluations = 30;
  const auto capped = sg::fast_kmedian(instance);
  EXPECT_TRUE(capped.hit_evaluation_cap);
  // Sweep granularity: at most one extra sweep of k * (|F| - k) candidates.
  const std::size_t sweep = instance.k * (instance.facilities.size() - instance.k);
  EXPECT_LE(capped.evaluations, 30u + sweep);
}

// --- Planner refresh semantics: version-gated rebuilds.

TEST(KMedianPlannerRefresh, RebuildsOnlyWhenMaskVersionMoves) {
  const topo::Topology& topology = small_fat_tree();
  topo::LivenessMask mask(topology);
  core::KMedianPlannerOptions options;
  options.liveness = &mask;
  core::KMedianPlanner planner(topology, options);
  EXPECT_EQ(planner.rebuilds(), 1u);  // the constructor's initial build
  EXPECT_FALSE(planner.refresh());    // mask unchanged: no rebuild
  EXPECT_EQ(planner.rebuilds(), 1u);

  mask.set_node(topology.rack(0).tor, false);
  EXPECT_TRUE(planner.refresh());
  EXPECT_EQ(planner.rebuilds(), 2u);
  EXPECT_EQ(planner.facility_racks().size(), topology.rack_count() - 1);
  EXPECT_FALSE(planner.refresh());  // already caught up

  mask.set_node(topology.rack(0).tor, true);
  EXPECT_TRUE(planner.refresh());
  EXPECT_EQ(planner.facility_racks().size(), topology.rack_count());

  // A planner without a mask never rebuilds (the topology is immutable);
  // rebuild() stays available for the naive benchmarking path.
  core::KMedianPlanner unmasked(topology);
  EXPECT_FALSE(unmasked.refresh());
  EXPECT_EQ(unmasked.rebuilds(), 1u);
  unmasked.rebuild();
  EXPECT_EQ(unmasked.rebuilds(), 2u);
}

// --- Engine-level differential: the kKMedian manage phase picks the same
// --- moves with the fast solver as with the naive rebuild + reference scan.

TEST(EngineKMedian, FastAndNaiveRoundsAgree) {
  wl::DeploymentOptions deployment;
  deployment.seed = 2015;
  deployment.vms_per_host = 3.0;

  core::EngineConfig fast_config;
  fast_config.mode = core::ManagerMode::kKMedian;
  fast_config.parallel_collect = false;

  // Flip the solver and the pure-caching switches only: the cost-rooting
  // modes (partner_rooted_costs, shared_leaf_cost_trees) are equal-cost
  // but not bit-identical, so they stay the same on both engines.
  core::EngineConfig naive_config = fast_config;
  naive_config.incremental_fair_share = false;
  naive_config.route_cache = false;
  naive_config.retain_cost_trees = false;
  naive_config.fast_kmedian = false;

  core::DistributedEngine fast_engine(small_fat_tree(), deployment, fast_config);
  core::DistributedEngine naive_engine(small_fat_tree(), deployment, naive_config);
  const auto fast_metrics = fast_engine.run(8);
  const auto naive_metrics = naive_engine.run(8);
  ASSERT_EQ(fast_metrics.size(), naive_metrics.size());
  for (std::size_t r = 0; r < fast_metrics.size(); ++r) {
    EXPECT_EQ(fast_metrics[r].migrations, naive_metrics[r].migrations) << "round " << r;
    EXPECT_EQ(fast_metrics[r].host_alerts, naive_metrics[r].host_alerts) << "round " << r;
    // search_space is intentionally not compared: the fast solver counts
    // candidate evaluations at sweep granularity while the reference scan
    // counts per candidate, so the totals differ even though the swap
    // trajectory (and therefore every migration) is identical.
  }
  // Both engines must land every VM on the same host.
  const auto& fd = fast_engine.deployment();
  const auto& nd = naive_engine.deployment();
  ASSERT_EQ(fd.vm_count(), nd.vm_count());
  for (wl::VmId vm = 0; vm < fd.vm_count(); ++vm) {
    EXPECT_EQ(fd.vm(vm).host, nd.vm(vm).host) << "vm " << vm;
  }
}
