// Differential harness for the incremental fair-share solver: drive a
// FairShareSolver through long random perturbation sequences (demand
// changes, rate-limit toggles, link/switch liveness flips, reroutes,
// endpoint migrations, flow-table growth) and check after every step that
// it matches the from-scratch reference on every flow rate and link load
// to 1e-9. This is the lockdown for the dirty-set algorithm of DESIGN.md
// §7 — any missed invalidation shows up as a stale rate here. The same
// 50-seed sweep runs on both reference fabrics (Fat-Tree and BCube);
// liveness flips inside the sequence cover the faulted regime.

#include <gtest/gtest.h>

#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "net/fair_share.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"
#include "topology/liveness.hpp"

namespace topo = sheriff::topo;
namespace net = sheriff::net;
namespace sc = sheriff::common;

namespace {

constexpr double kTol = 1e-9;

topo::Topology contended_fat_tree() {
  topo::FatTreeOptions options;
  options.pods = 4;
  options.hosts_per_rack = 2;
  options.tor_agg_gbps = 1.0;  // narrow uplinks: most seeds hit saturation
  return topo::build_fat_tree(options);
}

topo::Topology contended_bcube() {
  topo::BCubeOptions options;
  options.ports = 3;  // BCube(3,2): 27 servers, 3 switch levels
  options.levels = 2;
  options.link_gbps = 0.5;  // narrow uniform links: saturation everywhere
  return topo::build_bcube(options);
}

net::Flow make_flow(net::FlowId id, topo::NodeId src, topo::NodeId dst, double demand) {
  net::Flow f;
  f.id = id;
  f.src_host = src;
  f.dst_host = dst;
  f.demand_gbps = demand;
  return f;
}

/// Runs the from-scratch reference on a copy and compares every flow rate,
/// allocated_gbps, and per-link load/offered/utilization.
void expect_matches_reference(const topo::Topology& t, const std::vector<net::Flow>& flows,
                              const topo::LivenessMask* mask,
                              const net::FairShareResult& incremental, std::size_t step) {
  std::vector<net::Flow> reference_flows = flows;
  const auto reference = net::max_min_fair_share(t, reference_flows, mask);
  ASSERT_EQ(incremental.flow_rate.size(), reference.flow_rate.size()) << "step " << step;
  for (std::size_t f = 0; f < reference.flow_rate.size(); ++f) {
    EXPECT_NEAR(incremental.flow_rate[f], reference.flow_rate[f], kTol)
        << "flow " << f << " at step " << step;
    EXPECT_NEAR(flows[f].allocated_gbps, reference_flows[f].allocated_gbps, kTol)
        << "flow " << f << " at step " << step;
  }
  for (topo::LinkId l = 0; l < t.link_count(); ++l) {
    EXPECT_NEAR(incremental.link_load_gbps[l], reference.link_load_gbps[l], kTol)
        << "link " << l << " at step " << step;
    EXPECT_NEAR(incremental.link_offered_gbps[l], reference.link_offered_gbps[l], kTol)
        << "link " << l << " at step " << step;
    EXPECT_NEAR(incremental.link_utilization[l], reference.link_utilization[l], kTol)
        << "link " << l << " at step " << step;
  }
}

/// The full perturbation sweep for one (fabric, seed) pair. `flip_kind`
/// names the switch layer liveness flips and reroute blocks draw from —
/// core switches on the fat tree, level-1+ switches on BCube (a BCube
/// server keeps other levels when one switch dies, so the mask never
/// strands an endpoint for the whole run).
void run_differential(const topo::Topology& t, topo::NodeKind flip_kind, int seed) {
  sc::Pcg32 rng(static_cast<std::uint64_t>(seed) * 2654435761ULL + 17);
  net::Router router(t);
  topo::LivenessMask mask(t);
  router.apply_liveness(&mask);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  const auto cores = t.nodes_of_kind(flip_kind);

  std::vector<net::Flow> flows;
  const std::size_t n_flows = 24 + rng.next_below(48);
  for (net::FlowId id = 0; id < n_flows; ++id) {
    const auto a = rng.pick(hosts);
    const auto b = rng.pick(hosts);
    if (a == b) continue;
    auto f = make_flow(id, a, b, rng.uniform(0.05, 2.0));
    if (rng.bernoulli(0.25)) f.rate_limit_gbps = rng.uniform(0.1, 1.5);
    flows.push_back(f);
  }
  router.route_all(flows);

  net::FairShareSolver solver(t);
  expect_matches_reference(t, flows, &mask, solver.solve(flows, &mask), 0);

  // Track one failed fabric element at a time so recovery steps are exact
  // inverses and the mask never drifts into a partitioned mess.
  topo::LinkId downed_link = t.link_count();
  topo::NodeId downed_switch = t.node_count();

  const std::size_t steps = 25;
  for (std::size_t step = 1; step <= steps; ++step) {
    switch (rng.next_below(8)) {
      case 0: {  // single-flow demand change (sometimes to zero and back)
        auto& f = flows[rng.next_below(static_cast<std::uint32_t>(flows.size()))];
        f.demand_gbps = rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.05, 2.5);
        break;
      }
      case 1: {  // global demand drift, the engine's every-round shape
        for (auto& f : flows) f.demand_gbps *= rng.uniform(0.8, 1.25);
        break;
      }
      case 2: {  // rate-limit toggle (QCN feedback path)
        auto& f = flows[rng.next_below(static_cast<std::uint32_t>(flows.size()))];
        f.rate_limit_gbps = rng.bernoulli(0.5) ? rng.uniform(0.05, 1.0) : 0.0;
        break;
      }
      case 3: {  // link liveness flip
        if (downed_link == t.link_count()) {
          downed_link = rng.next_below(static_cast<std::uint32_t>(t.link_count()));
          mask.set_link(downed_link, false);
        } else {
          mask.set_link(downed_link, true);
          downed_link = t.link_count();
        }
        break;
      }
      case 4: {  // switch liveness flip (severs every incident link)
        if (downed_switch == t.node_count()) {
          downed_switch = rng.pick(cores);
          mask.set_node(downed_switch, false);
        } else {
          mask.set_node(downed_switch, true);
          downed_switch = t.node_count();
        }
        break;
      }
      case 5: {  // reroute around a blocked core (FLOWREROUTE shape)
        auto& f = flows[rng.next_below(static_cast<std::uint32_t>(flows.size()))];
        const std::vector<topo::NodeId> blocked{rng.pick(cores)};
        router.refresh_liveness();
        router.route(f, blocked);
        break;
      }
      case 6: {  // endpoint migration + teardown, re-routed next step
        auto& f = flows[rng.next_below(static_cast<std::uint32_t>(flows.size()))];
        f.src_host = rng.pick(hosts);
        f.path.clear();
        break;
      }
      default: {  // no-op round: nothing changed, nothing may move
        break;
      }
    }
    // Re-route unrouted flows like the engine does each round.
    router.refresh_liveness();
    for (auto& f : flows) {
      if (!f.routed() && f.src_host != f.dst_host) router.route(f);
    }
    // Occasionally the flow table grows (a new dependency edge appears).
    if (rng.bernoulli(0.1)) {
      const auto a = rng.pick(hosts);
      const auto b = rng.pick(hosts);
      if (a != b) {
        auto f = make_flow(static_cast<net::FlowId>(flows.size()), a, b,
                           rng.uniform(0.05, 2.0));
        router.route(f);
        flows.push_back(f);
      }
    }
    expect_matches_reference(t, flows, &mask, solver.solve(flows, &mask), step);
  }

  // The sequence must have exercised the incremental path, not degenerated
  // into rebuild-every-step: growth steps are the only legal full rebuilds.
  const auto& stats = solver.stats();
  EXPECT_EQ(stats.solves, steps + 1);
  EXPECT_LT(stats.full_rebuilds, stats.solves);
  EXPECT_GT(stats.reused_flows, 0u);
}

}  // namespace

class FairShareDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FairShareDifferential, IncrementalMatchesFromScratchUnderPerturbations) {
  run_differential(contended_fat_tree(), topo::NodeKind::kCoreSwitch, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareDifferential, ::testing::Range(0, 50));

class FairShareDifferentialBCube : public ::testing::TestWithParam<int> {};

TEST_P(FairShareDifferentialBCube, IncrementalMatchesFromScratchUnderPerturbations) {
  run_differential(contended_bcube(), topo::NodeKind::kBCubeSwitch, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareDifferentialBCube, ::testing::Range(0, 50));

// A no-op solve must not move a single rate and must reuse every flow.
TEST(FairShareDifferentialEdge, NoopSolveReusesEverything) {
  const auto t = contended_fat_tree();
  net::Router router(t);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows{make_flow(0, hosts[0], hosts[4], 1.5),
                               make_flow(1, hosts[1], hosts[5], 0.7)};
  router.route_all(flows);

  net::FairShareSolver solver(t);
  const auto first = solver.solve(flows);  // copy
  const auto after_rebuild = solver.stats();
  const auto& second = solver.solve(flows);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_EQ(first.flow_rate[f], second.flow_rate[f]);
  }
  // The second solve saw no edits: counters are cumulative, so the no-op
  // must add zero affected flows and reuse the whole table.
  EXPECT_EQ(solver.stats().full_rebuilds, 1u);
  EXPECT_EQ(solver.stats().affected_flows, after_rebuild.affected_flows);
  EXPECT_EQ(solver.stats().reused_flows, after_rebuild.reused_flows + flows.size());
}

// invalidate() must force the next solve to rebuild from scratch.
TEST(FairShareDifferentialEdge, InvalidateForcesRebuild) {
  const auto t = contended_fat_tree();
  net::Router router(t);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows{make_flow(0, hosts[0], hosts[6], 2.0)};
  router.route_all(flows);

  net::FairShareSolver solver(t);
  solver.solve(flows);
  solver.invalidate();
  solver.solve(flows);
  EXPECT_EQ(solver.stats().full_rebuilds, 2u);
  expect_matches_reference(t, flows, nullptr, solver.result(), 99);
}

// Liveness attach/detach transitions (nullptr ↔ mask) must be handled as
// wholesale changes in either direction.
TEST(FairShareDifferentialEdge, LivenessAttachDetach) {
  const auto t = contended_fat_tree();
  net::Router router(t);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows;
  for (net::FlowId id = 0; id < 12; ++id) {
    flows.push_back(make_flow(id, hosts[id % hosts.size()],
                              hosts[(id * 5 + 3) % hosts.size()], 0.9));
  }
  router.route_all(flows);
  topo::LivenessMask mask(t);
  mask.set_node(t.nodes_of_kind(topo::NodeKind::kAggSwitch).front(), false);

  net::FairShareSolver solver(t);
  expect_matches_reference(t, flows, nullptr, solver.solve(flows, nullptr), 1);
  expect_matches_reference(t, flows, &mask, solver.solve(flows, &mask), 2);
  expect_matches_reference(t, flows, nullptr, solver.solve(flows, nullptr), 3);
}
