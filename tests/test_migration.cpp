// Migration substrate tests: the six-stage live-migration timeline, the
// Eq. (1) cost model, and the Alg. 4 REQUEST/ACK admission broker.

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "migration/cost_model.hpp"
#include "migration/live_migration.hpp"
#include "migration/request.hpp"
#include "net/fair_share.hpp"
#include "net/routing.hpp"
#include "topology/fat_tree.hpp"

namespace mig = sheriff::mig;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace net = sheriff::net;
namespace sc = sheriff::common;

namespace {

const topo::Topology& test_topology() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

wl::Deployment make_deployment(std::uint64_t seed = 42) {
  wl::DeploymentOptions options;
  options.seed = seed;
  return wl::Deployment(test_topology(), options);
}

}  // namespace

TEST(LiveMigration, ConvergesWhenDirtyRateBelowBandwidth) {
  mig::LiveMigrationParams params;
  params.memory_gb = 4.0;
  params.dirty_rate_gbps = 0.2;
  params.bandwidth_gbps = 1.0;
  const auto timeline = mig::simulate_live_migration(params);
  EXPECT_GT(timeline.precopy_rounds, 1);
  EXPECT_LE(timeline.precopy_rounds, params.max_precopy_rounds);
  // Downtime must be tiny relative to the total (the 60 ms story).
  EXPECT_LT(timeline.t3_downtime_seconds, 0.05 * timeline.total_seconds());
  EXPECT_GE(timeline.transferred_gb, params.memory_gb);
}

TEST(LiveMigration, FasterLinkShortensEverything) {
  mig::LiveMigrationParams slow;
  slow.bandwidth_gbps = 1.0;
  mig::LiveMigrationParams fast = slow;
  fast.bandwidth_gbps = 10.0;
  const auto ts = mig::simulate_live_migration(slow);
  const auto tf = mig::simulate_live_migration(fast);
  EXPECT_LT(tf.t2_precopy_seconds, ts.t2_precopy_seconds);
  EXPECT_LT(tf.t3_downtime_seconds, ts.t3_downtime_seconds);
  EXPECT_LT(tf.total_seconds(), ts.total_seconds());
}

TEST(LiveMigration, HighDirtyRateHitsRoundBound) {
  mig::LiveMigrationParams params;
  params.memory_gb = 4.0;
  params.dirty_rate_gbps = 2.0;  // dirtying faster than the 1 Gbps link copies
  params.bandwidth_gbps = 1.0;
  const auto timeline = mig::simulate_live_migration(params);
  EXPECT_EQ(timeline.precopy_rounds, params.max_precopy_rounds);
  // Stop&copy still ships the residue, so downtime is substantial.
  EXPECT_GT(timeline.t3_downtime_seconds, 1.0);
}

TEST(LiveMigration, ZeroDirtyRateIsOneRound) {
  mig::LiveMigrationParams params;
  params.dirty_rate_gbps = 0.0;
  const auto timeline = mig::simulate_live_migration(params);
  EXPECT_EQ(timeline.precopy_rounds, 1);
  EXPECT_NEAR(timeline.t3_downtime_seconds, 0.0, 1e-9);
}

TEST(CostModel, BreakdownComponentsBehave) {
  const auto d = make_deployment();
  mig::MigrationCostModel model(test_topology(), d);
  const auto& vm = d.vm(0);

  // Any host in another rack.
  topo::NodeId far_host = topo::kInvalidNode;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost && node.rack != test_topology().node(vm.host).rack) {
      far_host = node.id;
      break;
    }
  }
  ASSERT_NE(far_host, topo::kInvalidNode);

  const auto breakdown = model.cost(vm.id, far_host);
  EXPECT_TRUE(breakdown.feasible);
  EXPECT_DOUBLE_EQ(breakdown.computing, model.params().computing_cost);
  EXPECT_GE(breakdown.dependency, 0.0);
  EXPECT_GT(breakdown.transmission, 0.0);
  EXPECT_NEAR(breakdown.total(),
              breakdown.computing + breakdown.dependency + breakdown.transmission, 1e-12);
}

TEST(CostModel, IntraRackCheaperThanCrossPod) {
  const auto d = make_deployment();
  mig::MigrationCostModel model(test_topology(), d);

  // A VM with no dependencies isolates the transmission term.
  wl::VmId loner = wl::kInvalidVm;
  for (const auto& vm : d.vms()) {
    if (d.dependencies().neighbors(vm.id).empty()) {
      loner = vm.id;
      break;
    }
  }
  ASSERT_NE(loner, wl::kInvalidVm);
  const auto& vm = d.vm(loner);
  const auto& topo_ref = test_topology();
  const auto& own_rack = topo_ref.rack(topo_ref.node(vm.host).rack);

  topo::NodeId same_rack = topo::kInvalidNode;
  for (topo::NodeId h : own_rack.hosts) {
    if (h != vm.host) same_rack = h;
  }
  topo::NodeId cross_pod = topo::kInvalidNode;
  const int own_pod = topo_ref.node(vm.host).pod;
  for (const auto& node : topo_ref.nodes()) {
    if (node.kind == topo::NodeKind::kHost && node.pod != own_pod) cross_pod = node.id;
  }
  ASSERT_NE(same_rack, topo::kInvalidNode);
  ASSERT_NE(cross_pod, topo::kInvalidNode);
  EXPECT_LT(model.total_cost(loner, same_rack), model.total_cost(loner, cross_pod));
}

TEST(CostModel, DependencyTermPullsTowardPartners) {
  const auto d = make_deployment();
  mig::MigrationCostModel model(test_topology(), d);
  // A VM with at least one dependency: destination in the partner's rack
  // has lower dependency cost than a far pod.
  for (const auto& vm : d.vms()) {
    const auto deps = d.dependencies().neighbors(vm.id);
    if (deps.empty()) continue;
    const auto partner_host = d.vm(deps.front()).host;
    const auto& partner_rack = test_topology().rack(test_topology().node(partner_host).rack);
    topo::NodeId near_partner = topo::kInvalidNode;
    for (topo::NodeId h : partner_rack.hosts) {
      if (h != partner_host) near_partner = h;
    }
    if (near_partner == topo::kInvalidNode) continue;
    topo::NodeId far = topo::kInvalidNode;
    const int partner_pod = test_topology().node(partner_host).pod;
    for (const auto& node : test_topology().nodes()) {
      if (node.kind == topo::NodeKind::kHost && node.pod != partner_pod) far = node.id;
    }
    const auto near_cost = model.cost(vm.id, near_partner);
    const auto far_cost = model.cost(vm.id, far);
    EXPECT_LT(near_cost.dependency, far_cost.dependency);
    return;
  }
  FAIL() << "no VM with dependencies";
}

TEST(CostModel, SaturatedPathBecomesInfeasible) {
  auto d = make_deployment();
  const auto& topo_ref = test_topology();
  net::Router router(topo_ref);

  // Saturate the source host's only uplink completely.
  const auto& vm = d.vm(0);
  std::vector<net::Flow> flows;
  net::Flow f;
  f.id = 0;
  f.src_host = vm.host;
  // Send to another rack to keep the uplink busy.
  f.dst_host = topo_ref.rack((topo_ref.node(vm.host).rack + 1) % topo_ref.rack_count()).hosts[0];
  f.demand_gbps = 100.0;
  flows.push_back(f);
  router.route_all(flows);
  const auto shares = net::max_min_fair_share(topo_ref, flows);

  mig::CostParams params;
  params.bandwidth_threshold_gbps = 0.05;
  params.management_reserve_fraction = 0.0;  // no management slice: B_t bites
  mig::MigrationCostModel model(topo_ref, d, params);
  model.set_bandwidth_state(&shares);

  topo::NodeId other_rack_host =
      topo_ref.rack((topo_ref.node(vm.host).rack + 2) % topo_ref.rack_count()).hosts[0];
  EXPECT_FALSE(model.cost(vm.id, other_rack_host).feasible);
  EXPECT_TRUE(std::isinf(model.total_cost(vm.id, other_rack_host)));

  // A management reserve above B_t keeps the move feasible but expensive.
  mig::CostParams reserved = params;
  reserved.management_reserve_fraction = 0.1;
  mig::MigrationCostModel reserved_model(topo_ref, d, reserved);
  reserved_model.set_bandwidth_state(&shares);
  const auto congested_cost = reserved_model.cost(vm.id, other_rack_host);
  EXPECT_TRUE(congested_cost.feasible);
  reserved_model.set_bandwidth_state(nullptr);
  const auto idle_cost = reserved_model.cost(vm.id, other_rack_host);
  EXPECT_GT(congested_cost.transmission, idle_cost.transmission);

  // Without the bandwidth state the same move is feasible.
  model.set_bandwidth_state(nullptr);
  EXPECT_TRUE(model.cost(vm.id, other_rack_host).feasible);
}

TEST(CostModel, ClampedDeltaModeMatchesPaperFormula) {
  const auto d = make_deployment(71);
  mig::CostParams span_params;
  span_params.dependency_mode = mig::DependencyCostMode::kPostMoveSpan;
  mig::CostParams delta_params;
  delta_params.dependency_mode = mig::DependencyCostMode::kClampedDelta;
  mig::MigrationCostModel span_model(test_topology(), d, span_params);
  mig::MigrationCostModel delta_model(test_topology(), d, delta_params);

  for (const auto& vm : d.vms()) {
    const auto deps = d.dependencies().neighbors(vm.id);
    if (deps.empty()) continue;
    // Destination next to a partner: moving closer → delta clamps to 0,
    // while the span mode still charges the (small) remaining span.
    const auto partner_host = d.vm(deps.front()).host;
    const auto& partner_rack = test_topology().rack(test_topology().node(partner_host).rack);
    for (topo::NodeId h : partner_rack.hosts) {
      if (h == partner_host || h == vm.host) continue;
      const auto span_cost = span_model.cost(vm.id, h);
      const auto delta_cost = delta_model.cost(vm.id, h);
      EXPECT_GE(span_cost.dependency, delta_cost.dependency - 1e-9);
      EXPECT_GE(delta_cost.dependency, 0.0);
      // Same pair under both modes agrees on the other two terms.
      EXPECT_DOUBLE_EQ(span_cost.computing, delta_cost.computing);
      EXPECT_NEAR(span_cost.transmission, delta_cost.transmission, 1e-9);
      return;
    }
  }
  FAIL() << "no suitable VM/destination pair";
}

TEST(CostModel, DeltaModeChargesMovesAwayFromPartners) {
  const auto d = make_deployment(72);
  mig::CostParams params;
  params.dependency_mode = mig::DependencyCostMode::kClampedDelta;
  mig::MigrationCostModel model(test_topology(), d, params);

  for (const auto& vm : d.vms()) {
    const auto deps = d.dependencies().neighbors(vm.id);
    if (deps.size() != 1) continue;
    const auto partner_host = d.vm(deps.front()).host;
    const int partner_pod = test_topology().node(partner_host).pod;
    const int vm_pod = test_topology().node(vm.host).pod;
    if (vm_pod != partner_pod) continue;  // want a same-pod starting point
    topo::NodeId far = topo::kInvalidNode;
    for (const auto& node : test_topology().nodes()) {
      if (node.kind == topo::NodeKind::kHost && node.pod != partner_pod) far = node.id;
    }
    ASSERT_NE(far, topo::kInvalidNode);
    const auto cost = model.cost(vm.id, far);
    EXPECT_GT(cost.dependency, 0.0);  // moving away is charged
    return;
  }
  GTEST_SKIP() << "no single-dependency same-pod VM for this seed";
}

TEST(AdmissionBroker, AckMovesRejectKeeps) {
  auto d = make_deployment();
  mig::AdmissionBroker broker(d);
  // Find a feasible target in some rack.
  for (const auto& vm : d.vms()) {
    for (const auto& node : d.topology().nodes()) {
      if (node.kind != topo::NodeKind::kHost || !d.can_place(vm.id, node.id)) continue;
      const auto outcome = broker.request(vm.id, node.id, node.rack);
      EXPECT_EQ(outcome, mig::RequestOutcome::kAck);
      EXPECT_EQ(d.vm(vm.id).host, node.id);
      EXPECT_EQ(broker.ack_count(), 1u);
      return;
    }
  }
  FAIL() << "no feasible placement";
}

TEST(AdmissionBroker, WrongDelegateIsIgnored) {
  auto d = make_deployment();
  mig::AdmissionBroker broker(d);
  const auto& vm = d.vm(0);
  const auto& topo_ref = d.topology();
  // Address a host owned by rack R to the shim of a different rack.
  const topo::NodeId dest = topo_ref.rack(1).hosts[0];
  const auto outcome = broker.request(vm.id, dest, /*handler_rack=*/2);
  EXPECT_EQ(outcome, mig::RequestOutcome::kIgnoredNotDelegate);
  EXPECT_EQ(d.vm(0).host, vm.host);  // nothing moved
}

TEST(AdmissionBroker, CapacityExhaustionRejects) {
  auto d = make_deployment();
  mig::AdmissionBroker broker(d);
  // Fill one destination host until a request bounces.
  const topo::NodeId dest = d.topology().rack(0).hosts[0];
  const auto dest_rack = d.topology().node(dest).rack;
  std::size_t moved = 0;
  bool saw_reject = false;
  for (const auto& vm : d.vms()) {
    if (vm.host == dest) continue;
    const auto outcome = broker.request(vm.id, dest, dest_rack);
    if (outcome == mig::RequestOutcome::kAck) {
      ++moved;
    } else if (outcome == mig::RequestOutcome::kRejectCapacity) {
      saw_reject = true;
      break;
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_TRUE(saw_reject);
  EXPECT_LE(d.host_used_capacity(dest), d.host_capacity());
  EXPECT_EQ(broker.reject_count(), 1u);
}

TEST(RequestOutcome, ToStringCovered) {
  EXPECT_STREQ(mig::to_string(mig::RequestOutcome::kAck), "ACK");
  EXPECT_STREQ(mig::to_string(mig::RequestOutcome::kRejectCapacity), "REJECT");
  EXPECT_STREQ(mig::to_string(mig::RequestOutcome::kIgnoredNotDelegate), "IGNORED");
}
