// Topology tests: Fat-Tree and BCube builders against their closed-form
// shapes, structural invariants, neighbor-rack regions, and geometry.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/require.hpp"
#include "topology/bcube.hpp"
#include "topology/dot_export.hpp"
#include "topology/fat_tree.hpp"
#include "topology/geometry.hpp"
#include "topology/topology.hpp"

namespace topo = sheriff::topo;
namespace sc = sheriff::common;

class FatTreeShapes : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeShapes, MatchesClosedForm) {
  topo::FatTreeOptions options;
  options.pods = GetParam();
  options.hosts_per_rack = 3;
  const auto shape = topo::fat_tree_shape(options);
  const auto t = topo::build_fat_tree(options);

  const auto k = static_cast<std::size_t>(options.pods);
  EXPECT_EQ(shape.racks, k * k / 2);
  EXPECT_EQ(t.rack_count(), shape.racks);
  EXPECT_EQ(t.count_kind(topo::NodeKind::kHost), shape.hosts);
  EXPECT_EQ(t.count_kind(topo::NodeKind::kTorSwitch), shape.tor_switches);
  EXPECT_EQ(t.count_kind(topo::NodeKind::kAggSwitch), shape.agg_switches);
  EXPECT_EQ(t.count_kind(topo::NodeKind::kCoreSwitch), shape.core_switches);
  EXPECT_EQ(t.link_count(), shape.links);
}

INSTANTIATE_TEST_SUITE_P(PodSizes, FatTreeShapes, ::testing::Values(2, 4, 8, 12, 16));

TEST(FatTree, EightPodExampleOfFig1) {
  // The paper's Fig. 1 instance: 8 pods → 32 racks, 16 cores.
  topo::FatTreeOptions options;
  options.pods = 8;
  const auto t = topo::build_fat_tree(options);
  EXPECT_EQ(t.rack_count(), 32u);
  EXPECT_EQ(t.count_kind(topo::NodeKind::kCoreSwitch), 16u);
}

TEST(FatTree, RejectsOddPodCount) {
  topo::FatTreeOptions options;
  options.pods = 5;
  EXPECT_THROW(topo::build_fat_tree(options), sc::RequirementError);
}

TEST(FatTree, EveryHostHangsOffItsRackTor) {
  topo::FatTreeOptions options;
  options.pods = 4;
  options.hosts_per_rack = 2;
  const auto t = topo::build_fat_tree(options);
  for (const auto& rack : t.racks()) {
    ASSERT_EQ(rack.hosts.size(), 2u);
    for (topo::NodeId h : rack.hosts) {
      EXPECT_TRUE(t.adjacent(h, rack.tor));
      EXPECT_EQ(t.node(h).rack, rack.id);
      EXPECT_EQ(t.links_of(h).size(), 1u);  // hosts are single-homed
    }
  }
}

TEST(FatTree, NeighborRacksArePodPeers) {
  // In a Fat-Tree, racks two hops away (ToR—agg—ToR) are exactly the other
  // racks of the same pod.
  topo::FatTreeOptions options;
  options.pods = 6;
  const auto t = topo::build_fat_tree(options);
  const auto neighbors = t.neighbor_racks(0);
  EXPECT_EQ(neighbors.size(), static_cast<std::size_t>(options.pods / 2 - 1));
  for (topo::RackId r : neighbors) {
    EXPECT_EQ(t.node(t.rack(r).tor).pod, t.node(t.rack(0).tor).pod);
  }
}

TEST(FatTree, TorUplinkCapacitiesApplied) {
  topo::FatTreeOptions options;
  options.pods = 4;
  options.tor_agg_gbps = 1.0;   // the Sec. VI-B setting
  options.agg_core_gbps = 10.0;
  const auto t = topo::build_fat_tree(options);
  for (const auto& link : t.links()) {
    const auto ka = t.node(link.a).kind;
    const auto kb = t.node(link.b).kind;
    if ((ka == topo::NodeKind::kTorSwitch && kb == topo::NodeKind::kAggSwitch) ||
        (kb == topo::NodeKind::kTorSwitch && ka == topo::NodeKind::kAggSwitch)) {
      EXPECT_DOUBLE_EQ(link.capacity_gbps, 1.0);
    }
    if (ka == topo::NodeKind::kCoreSwitch || kb == topo::NodeKind::kCoreSwitch) {
      EXPECT_DOUBLE_EQ(link.capacity_gbps, 10.0);
    }
  }
}

class BCubeShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BCubeShapes, MatchesClosedForm) {
  const auto [n, k] = GetParam();
  topo::BCubeOptions options;
  options.ports = n;
  options.levels = k;
  const auto shape = topo::bcube_shape(options);
  const auto t = topo::build_bcube(options);

  EXPECT_EQ(t.count_kind(topo::NodeKind::kHost), shape.servers);
  const std::size_t switches =
      t.count_kind(topo::NodeKind::kTorSwitch) + t.count_kind(topo::NodeKind::kBCubeSwitch);
  EXPECT_EQ(switches, shape.switches_per_level * shape.switch_levels);
  EXPECT_EQ(t.link_count(), shape.links);
  EXPECT_EQ(t.rack_count(), shape.racks);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BCubeShapes,
                         ::testing::Values(std::pair{2, 1}, std::pair{3, 1}, std::pair{4, 1},
                                           std::pair{8, 1}, std::pair{3, 2}, std::pair{4, 2}));

TEST(BCube, ServersHaveOnePortPerLevel) {
  topo::BCubeOptions options;
  options.ports = 4;
  options.levels = 2;
  const auto t = topo::build_bcube(options);
  for (const auto& node : t.nodes()) {
    if (node.kind == topo::NodeKind::kHost) {
      EXPECT_EQ(t.links_of(node.id).size(), 3u);  // k+1 = 3 levels
    }
  }
}

TEST(BCube, NeighborRacksViaHigherLevels) {
  // In BCube(n,1), each rack's servers reach all n-1 sibling racks through
  // level-1 switches.
  topo::BCubeOptions options;
  options.ports = 4;
  options.levels = 1;
  const auto t = topo::build_bcube(options);
  for (topo::RackId r = 0; r < t.rack_count(); ++r) {
    EXPECT_EQ(t.neighbor_racks(r).size(), 3u);
  }
}

TEST(BCube, SwitchLevelsAreLabelled) {
  topo::BCubeOptions options;
  options.ports = 3;
  options.levels = 2;
  const auto t = topo::build_bcube(options);
  std::size_t level0 = 0;
  std::size_t higher = 0;
  for (const auto& node : t.nodes()) {
    if (node.kind == topo::NodeKind::kTorSwitch) {
      EXPECT_EQ(node.level, 0);
      ++level0;
    } else if (node.kind == topo::NodeKind::kBCubeSwitch) {
      EXPECT_GE(node.level, 1);
      ++higher;
    }
  }
  EXPECT_EQ(level0, 9u);   // n^k = 3^2
  EXPECT_EQ(higher, 18u);  // two more levels of 9
}

TEST(Geometry, RackPositionsFoldIntoRows) {
  topo::FloorPlan plan;
  plan.racks_per_row = 4;
  const auto [x0, y0] = topo::rack_position(plan, 0);
  const auto [x3, y3] = topo::rack_position(plan, 3);
  const auto [x4, y4] = topo::rack_position(plan, 4);
  EXPECT_DOUBLE_EQ(y0, y3);          // same row
  EXPECT_GT(x3, x0);
  EXPECT_GT(y4, y0);                 // next row
  EXPECT_DOUBLE_EQ(x4, x0);          // first column again
}

TEST(Geometry, CableDistanceIsManhattanPlusPatching) {
  EXPECT_DOUBLE_EQ(topo::cable_distance(0.0, 0.0, 3.0, 4.0), 9.0);
  EXPECT_DOUBLE_EQ(topo::cable_distance(1.0, 1.0, 1.0, 1.0), 2.0);  // patching only
}

TEST(Topology, ValidateCatchesMissingPieces) {
  topo::Topology t;
  EXPECT_THROW(t.validate(), sc::RequirementError);  // empty

  const auto host = t.add_node(topo::NodeKind::kHost);
  const auto tor = t.add_node(topo::NodeKind::kTorSwitch);
  t.add_link(host, tor, 1.0, 1.0);
  EXPECT_THROW(t.validate(), sc::RequirementError);  // host not in a rack

  const auto rack = t.add_rack();
  t.assign_host_to_rack(host, rack);
  t.assign_tor_to_rack(tor, rack);
  t.validate();  // now fine
}

TEST(Topology, LinkBetweenAndPeer) {
  topo::FatTreeOptions options;
  options.pods = 4;
  const auto t = topo::build_fat_tree(options);
  const auto& rack = t.rack(0);
  const auto link = t.link_between(rack.hosts[0], rack.tor);
  EXPECT_EQ(t.peer(link, rack.hosts[0]), rack.tor);
  EXPECT_EQ(t.peer(link, rack.tor), rack.hosts[0]);
  EXPECT_THROW((void)t.link_between(rack.hosts[0], rack.hosts[1]), sc::RequirementError);
}

TEST(DotExport, ContainsNodesEdgesAndClusters) {
  topo::FatTreeOptions options;
  options.pods = 2;
  options.hosts_per_rack = 1;
  const auto t = topo::build_fat_tree(options);
  std::ostringstream os;
  topo::write_dot(os, t);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph \"fat-tree-k2\""), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_rack0"), std::string::npos);
  EXPECT_NE(dot.find(" -- "), std::string::npos);
  EXPECT_NE(dot.find("10G"), std::string::npos);
  // Every node is declared exactly once (edge lines use a different
  // syntax, so the declaration label is a unique marker).
  for (const auto& node : t.nodes()) {
    const std::string needle =
        std::string("[label=\"") + topo::to_string(node.kind) + std::to_string(node.id) + "\"";
    const auto first = dot.find(needle);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(dot.find(needle, first + 1), std::string::npos);
  }
}

TEST(DotExport, SwitchOnlyViewDropsHosts) {
  topo::FatTreeOptions options;
  options.pods = 4;
  const auto t = topo::build_fat_tree(options);
  std::ostringstream os;
  topo::DotOptions dopt;
  dopt.include_hosts = false;
  dopt.cluster_racks = false;
  topo::write_dot(os, t, dopt);
  EXPECT_EQ(os.str().find("host"), std::string::npos);
  EXPECT_NE(os.str().find("core"), std::string::npos);
}

TEST(Topology, WiredGraphWeightConventions) {
  topo::FatTreeOptions options;
  options.pods = 4;
  const auto t = topo::build_fat_tree(options);
  const auto hops = t.wired_graph(topo::EdgeWeight::kHops);
  const auto dist = t.wired_graph(topo::EdgeWeight::kDistance);
  const auto inv = t.wired_graph(topo::EdgeWeight::kInverseCapacity);
  EXPECT_EQ(hops.edge_count(), t.link_count());
  const auto& link = t.link(0);
  EXPECT_DOUBLE_EQ(hops.min_edge_weight(link.a, link.b), 1.0);
  EXPECT_DOUBLE_EQ(dist.min_edge_weight(link.a, link.b), link.distance_m);
  EXPECT_DOUBLE_EQ(inv.min_edge_weight(link.a, link.b), 1.0 / link.capacity_gbps);
}
