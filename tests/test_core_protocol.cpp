// Message-passing migration protocol tests: contention at one destination
// is resolved FCFS, same-round dependency races are caught at commit,
// results are identical with and without the thread pool, and the engine's
// two protocol modes both preserve the global invariants.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "fault/lossy_channel.hpp"
#include "migration/cost_model.hpp"
#include "topology/fat_tree.hpp"

namespace core = sheriff::core;
namespace mig = sheriff::mig;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace sc = sheriff::common;

namespace {

const topo::Topology& test_topology() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

wl::Deployment make_deployment(std::uint64_t seed) {
  wl::DeploymentOptions options;
  options.seed = seed;
  options.dependency_degree = 0.0;  // controlled dependencies per test
  return wl::Deployment(test_topology(), options);
}

/// Demands: every VM of rack r targeting exactly the given host list.
core::MigrationDemand demand_for(const wl::Deployment&, topo::RackId rack,
                                 std::vector<wl::VmId> vms,
                                 std::vector<topo::NodeId> targets) {
  core::MigrationDemand demand;
  demand.shim = rack;
  demand.vms = std::move(vms);
  demand.region_targets = std::move(targets);
  return demand;
}

}  // namespace

TEST(Protocol, PlacesSimpleDemands) {
  auto d = make_deployment(81);
  mig::MigrationCostModel model(test_topology(), d);
  core::DistributedMigrationProtocol protocol(d, model, core::SheriffConfig{});

  const topo::RackId r0 = test_topology().node(d.vm(0).host).rack;
  const auto plan = protocol.run(
      {demand_for(d, r0, {0}, test_topology().rack((r0 + 1) % 8).hosts)});
  ASSERT_EQ(plan.plan.moves.size(), 1u);
  EXPECT_EQ(plan.plan.moves[0].vm, 0u);
  EXPECT_EQ(d.vm(0).host, plan.plan.moves[0].to);
  EXPECT_EQ(plan.conflicts, 0u);
  EXPECT_GE(plan.iterations, 1u);
}

TEST(Protocol, ContentionAtOneDestinationResolvedFcfs) {
  auto d = make_deployment(82);
  mig::MigrationCostModel model(test_topology(), d);

  // Two shims push VMs at a single destination host with limited room.
  // Pick the emptiest host so at least the first few requests fit.
  topo::NodeId dest = topo::kInvalidNode;
  int best_free = 0;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost && d.host_free_capacity(node.id) > best_free) {
      best_free = d.host_free_capacity(node.id);
      dest = node.id;
    }
  }
  ASSERT_NE(dest, topo::kInvalidNode);
  const int free = d.host_free_capacity(dest);

  // Collect enough fitting VMs from other racks to overshoot the capacity.
  std::vector<core::MigrationDemand> demands;
  int queued_capacity = 0;
  for (const auto& vm : d.vms()) {
    if (vm.host == dest || vm.capacity > free) continue;
    const topo::RackId rack = test_topology().node(vm.host).rack;
    if (rack == test_topology().node(dest).rack) continue;
    demands.push_back(demand_for(d, rack, {vm.id}, {dest}));
    queued_capacity += vm.capacity;
    if (queued_capacity > 2 * free + 40) break;
  }
  ASSERT_GT(queued_capacity, free);

  core::DistributedMigrationProtocol protocol(d, model, core::SheriffConfig{});
  const auto result = protocol.run(std::move(demands));
  // Destination never over capacity; the overflow is rejected/unplaced.
  EXPECT_LE(d.host_used_capacity(dest), d.host_capacity());
  EXPECT_FALSE(result.plan.unplaced.empty());
  EXPECT_GT(result.plan.rejects + result.plan.unplaced.size(), 0u);
  EXPECT_GT(result.plan.moves.size(), 0u);  // FCFS winners landed
}

TEST(Protocol, DependencyRaceCountsAsConflict) {
  auto d = make_deployment(83);
  mig::MigrationCostModel model(test_topology(), d);

  // Two dependent VMs in *different* racks, both proposed to one host
  // with plenty of capacity: each delegate decision alone is fine, the
  // pair is not — the commit must catch the race.
  wl::VmId a = wl::kInvalidVm;
  wl::VmId b = wl::kInvalidVm;
  for (const auto& va : d.vms()) {
    for (const auto& vb : d.vms()) {
      if (va.id >= vb.id) continue;
      if (va.host == vb.host) continue;
      if (test_topology().node(va.host).rack == test_topology().node(vb.host).rack) continue;
      a = va.id;
      b = vb.id;
      break;
    }
    if (a != wl::kInvalidVm) break;
  }
  ASSERT_NE(a, wl::kInvalidVm);
  d.add_dependency(a, b);

  topo::NodeId dest = topo::kInvalidNode;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind != topo::NodeKind::kHost) continue;
    if (d.can_place(a, node.id) && d.can_place(b, node.id) &&
        d.host_free_capacity(node.id) >= d.vm(a).capacity + d.vm(b).capacity) {
      dest = node.id;
      break;
    }
  }
  ASSERT_NE(dest, topo::kInvalidNode);

  core::SheriffConfig config;
  config.max_matching_rounds = 1;  // single round: expose the race itself
  core::DistributedMigrationProtocol protocol(d, model, config);
  const auto result = protocol.run(
      {demand_for(d, test_topology().node(d.vm(a).host).rack, {a}, {dest}),
       demand_for(d, test_topology().node(d.vm(b).host).rack, {b}, {dest})});

  // Exactly one of them lands; the other is a recorded conflict.
  EXPECT_EQ(result.plan.moves.size(), 1u);
  EXPECT_EQ(result.conflicts, 1u);
  EXPECT_NE(d.vm(a).host, d.vm(b).host);  // conflict rule intact
}

TEST(Protocol, DeterministicWithAndWithoutThreadPool) {
  sc::ThreadPool pool(4);
  auto run = [&](sc::ThreadPool* p) {
    auto d = make_deployment(84);
    mig::MigrationCostModel model(test_topology(), d);
    core::DistributedMigrationProtocol protocol(d, model, core::SheriffConfig{}, p);
    std::vector<core::MigrationDemand> demands;
    for (topo::RackId r = 0; r < 4; ++r) {
      const auto& hosts = test_topology().rack(r).hosts;
      std::vector<wl::VmId> vms;
      for (topo::NodeId h : hosts) {
        for (wl::VmId id : d.vms_on_host(h)) vms.push_back(id);
      }
      vms.resize(std::min<std::size_t>(vms.size(), 3));
      demands.push_back(
          demand_for(d, r, std::move(vms), test_topology().rack(r + 4).hosts));
    }
    return protocol.run(std::move(demands));
  };
  const auto serial = run(nullptr);
  const auto parallel = run(&pool);
  ASSERT_EQ(serial.plan.moves.size(), parallel.plan.moves.size());
  EXPECT_DOUBLE_EQ(serial.plan.total_cost, parallel.plan.total_cost);
  for (std::size_t i = 0; i < serial.plan.moves.size(); ++i) {
    EXPECT_EQ(serial.plan.moves[i].vm, parallel.plan.moves[i].vm);
    EXPECT_EQ(serial.plan.moves[i].to, parallel.plan.moves[i].to);
  }
}

TEST(Protocol, EmptyDemandsAreNoOp) {
  auto d = make_deployment(85);
  mig::MigrationCostModel model(test_topology(), d);
  core::DistributedMigrationProtocol protocol(d, model, core::SheriffConfig{});
  const auto result = protocol.run({});
  EXPECT_TRUE(result.plan.moves.empty());
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Protocol, LossBackoffIsCappedAtThreeIterations) {
  // Under a drop-everything channel a VM is re-proposed on a fixed
  // schedule: backoff grows 1, 2, then stays at kBackoffCap = 3, so
  // REQUESTs go out at iterations 0, 2, 5, 9, 13, ... (every 4 once
  // capped). Over a 30-iteration budget that is exactly 9 proposals —
  // a cap of 2 would yield 11 drops, an uncapped backoff only 7, so the
  // drop count pins the cap itself.
  auto d = make_deployment(87);
  mig::MigrationCostModel model(test_topology(), d);
  sheriff::fault::LossyChannel channel(1.0, 87);
  core::SheriffConfig config;
  config.max_matching_rounds = 1;
  core::DistributedMigrationProtocol protocol(d, model, config, nullptr, &channel,
                                              /*loss_retry_budget=*/29);

  const topo::NodeId home = d.vm(0).host;
  const topo::RackId r0 = test_topology().node(home).rack;
  const auto result = protocol.run(
      {demand_for(d, r0, {0}, test_topology().rack((r0 + 1) % 8).hosts)});

  EXPECT_EQ(result.iterations, 30u);  // losses keep the budget alive
  EXPECT_EQ(result.drops, 9u);
  EXPECT_TRUE(result.plan.moves.empty());
  ASSERT_EQ(result.plan.unplaced.size(), 1u);
  EXPECT_EQ(result.plan.unplaced[0], 0u);
  EXPECT_EQ(d.vm(0).host, home);  // nothing committed, nothing leaked
}

TEST(Protocol, DuplicateVmClaimsCommitAtMostOnce) {
  // One VM claimed three times — twice inside one demand (the host-alert
  // single-VM rule and the ToR budget pass can pick the same tenant) and
  // once by a second shim. The cross-demand dedup must collapse all of
  // them to a single move; every VM in the final plan is unique.
  auto d = make_deployment(88);
  mig::MigrationCostModel model(test_topology(), d);
  core::DistributedMigrationProtocol protocol(d, model, core::SheriffConfig{});

  const topo::NodeId home = d.vm(0).host;
  const topo::RackId r0 = test_topology().node(home).rack;
  const auto targets = test_topology().rack((r0 + 1) % 8).hosts;
  const auto result =
      protocol.run({demand_for(d, r0, {0, 0}, targets),
                    demand_for(d, (r0 + 2) % 8, {0}, targets)});

  std::size_t moves_of_vm0 = 0;
  std::vector<bool> moved(d.vm_count(), false);
  for (const auto& move : result.plan.moves) {
    EXPECT_FALSE(moved[move.vm]) << "VM " << move.vm << " moved twice in one round";
    moved[move.vm] = true;
    if (move.vm == 0) ++moves_of_vm0;
  }
  EXPECT_EQ(moves_of_vm0, 1u);
  EXPECT_NE(d.vm(0).host, home);
  EXPECT_EQ(result.conflicts, 0u);  // dropped duplicates, not apply races
}

TEST(Protocol, DropAllChannelTerminatesWithoutSideEffects) {
  // A channel that loses every message must still terminate within the
  // iteration budget and leave the deployment untouched: no moves, no
  // leaked reservations, every demanded VM reported unplaced.
  auto d = make_deployment(89);
  mig::MigrationCostModel model(test_topology(), d);
  std::vector<topo::NodeId> homes;
  for (const auto& vm : d.vms()) homes.push_back(vm.host);
  std::vector<int> used_before;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost) {
      used_before.push_back(d.host_used_capacity(node.id));
    }
  }

  sheriff::fault::LossyChannel channel(1.0, 89);
  core::SheriffConfig config;
  config.max_matching_rounds = 4;
  core::DistributedMigrationProtocol protocol(d, model, config, nullptr, &channel,
                                              /*loss_retry_budget=*/8);
  std::vector<core::MigrationDemand> demands;
  std::size_t demanded = 0;
  for (topo::RackId r = 0; r < 4; ++r) {
    std::vector<wl::VmId> vms;
    for (topo::NodeId h : test_topology().rack(r).hosts) {
      for (wl::VmId id : d.vms_on_host(h)) vms.push_back(id);
    }
    vms.resize(std::min<std::size_t>(vms.size(), 2));
    demanded += vms.size();
    demands.push_back(demand_for(d, r, std::move(vms),
                                 test_topology().rack(r + 4).hosts));
  }
  const auto result = protocol.run(std::move(demands));

  EXPECT_LE(result.iterations, 12u);  // max_matching_rounds + retry budget
  EXPECT_TRUE(result.plan.moves.empty());
  EXPECT_EQ(result.plan.unplaced.size(), demanded);
  EXPECT_GT(result.drops, 0u);
  for (const auto& vm : d.vms()) EXPECT_EQ(vm.host, homes[vm.id]);
  std::size_t h = 0;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost) {
      EXPECT_EQ(d.host_used_capacity(node.id), used_before[h++]);
    }
  }
}

TEST(Protocol, HeavyLossStillConvergesWithinBudgetAndInvariants) {
  // 60% loss: the protocol may need the retry budget, but it terminates,
  // never moves a VM twice, and never overfills a host.
  auto d = make_deployment(90);
  mig::MigrationCostModel model(test_topology(), d);
  sheriff::fault::LossyChannel channel(0.6, 90);
  core::SheriffConfig config;
  config.max_matching_rounds = 4;
  core::DistributedMigrationProtocol protocol(d, model, config, nullptr, &channel,
                                              /*loss_retry_budget=*/16);
  std::vector<core::MigrationDemand> demands;
  for (topo::RackId r = 0; r < 4; ++r) {
    std::vector<wl::VmId> vms;
    for (topo::NodeId h : test_topology().rack(r).hosts) {
      for (wl::VmId id : d.vms_on_host(h)) vms.push_back(id);
    }
    vms.resize(std::min<std::size_t>(vms.size(), 3));
    demands.push_back(demand_for(d, r, std::move(vms),
                                 test_topology().rack(r + 4).hosts));
  }
  const auto result = protocol.run(std::move(demands));

  EXPECT_LE(result.iterations, 20u);
  EXPECT_GT(result.drops, 0u);
  EXPECT_GT(result.plan.moves.size(), 0u);  // losses delay, not starve
  std::vector<bool> moved(d.vm_count(), false);
  for (const auto& move : result.plan.moves) {
    EXPECT_FALSE(moved[move.vm]) << "VM " << move.vm << " moved twice in one round";
    moved[move.vm] = true;
  }
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost) {
      EXPECT_LE(d.host_used_capacity(node.id), d.host_capacity());
    }
  }
}

TEST(Protocol, EngineModesBothPreserveInvariants) {
  for (const auto protocol_kind :
       {core::MigrationProtocol::kMessagePassing, core::MigrationProtocol::kSerializedFcfs}) {
    core::EngineConfig config;
    config.parallel_collect = false;
    config.protocol = protocol_kind;
    wl::DeploymentOptions deploy;
    deploy.seed = 86;
    core::DistributedEngine engine(test_topology(), deploy, config);
    const auto metrics = engine.run(8);
    const auto& d = engine.deployment();
    for (const auto& node : test_topology().nodes()) {
      if (node.kind == topo::NodeKind::kHost) {
        EXPECT_LE(d.host_used_capacity(node.id), d.host_capacity());
      }
    }
    for (wl::VmId x = 0; x < d.vm_count(); ++x) {
      for (wl::VmId y : d.dependencies().neighbors(x)) {
        EXPECT_NE(d.vm(x).host, d.vm(y).host);
      }
    }
    std::size_t migrations = 0;
    for (const auto& m : metrics) migrations += m.migrations;
    EXPECT_GT(migrations, 0u);
  }
}
