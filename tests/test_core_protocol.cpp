// Message-passing migration protocol tests: contention at one destination
// is resolved FCFS, same-round dependency races are caught at commit,
// results are identical with and without the thread pool, and the engine's
// two protocol modes both preserve the global invariants.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "migration/cost_model.hpp"
#include "topology/fat_tree.hpp"

namespace core = sheriff::core;
namespace mig = sheriff::mig;
namespace wl = sheriff::wl;
namespace topo = sheriff::topo;
namespace sc = sheriff::common;

namespace {

const topo::Topology& test_topology() {
  static const topo::Topology t = [] {
    topo::FatTreeOptions options;
    options.pods = 4;
    options.hosts_per_rack = 3;
    return topo::build_fat_tree(options);
  }();
  return t;
}

wl::Deployment make_deployment(std::uint64_t seed) {
  wl::DeploymentOptions options;
  options.seed = seed;
  options.dependency_degree = 0.0;  // controlled dependencies per test
  return wl::Deployment(test_topology(), options);
}

/// Demands: every VM of rack r targeting exactly the given host list.
core::MigrationDemand demand_for(const wl::Deployment&, topo::RackId rack,
                                 std::vector<wl::VmId> vms,
                                 std::vector<topo::NodeId> targets) {
  core::MigrationDemand demand;
  demand.shim = rack;
  demand.vms = std::move(vms);
  demand.region_targets = std::move(targets);
  return demand;
}

}  // namespace

TEST(Protocol, PlacesSimpleDemands) {
  auto d = make_deployment(81);
  mig::MigrationCostModel model(test_topology(), d);
  core::DistributedMigrationProtocol protocol(d, model, core::SheriffConfig{});

  const topo::RackId r0 = test_topology().node(d.vm(0).host).rack;
  const auto plan = protocol.run(
      {demand_for(d, r0, {0}, test_topology().rack((r0 + 1) % 8).hosts)});
  ASSERT_EQ(plan.plan.moves.size(), 1u);
  EXPECT_EQ(plan.plan.moves[0].vm, 0u);
  EXPECT_EQ(d.vm(0).host, plan.plan.moves[0].to);
  EXPECT_EQ(plan.conflicts, 0u);
  EXPECT_GE(plan.iterations, 1u);
}

TEST(Protocol, ContentionAtOneDestinationResolvedFcfs) {
  auto d = make_deployment(82);
  mig::MigrationCostModel model(test_topology(), d);

  // Two shims push VMs at a single destination host with limited room.
  // Pick the emptiest host so at least the first few requests fit.
  topo::NodeId dest = topo::kInvalidNode;
  int best_free = 0;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind == topo::NodeKind::kHost && d.host_free_capacity(node.id) > best_free) {
      best_free = d.host_free_capacity(node.id);
      dest = node.id;
    }
  }
  ASSERT_NE(dest, topo::kInvalidNode);
  const int free = d.host_free_capacity(dest);

  // Collect enough fitting VMs from other racks to overshoot the capacity.
  std::vector<core::MigrationDemand> demands;
  int queued_capacity = 0;
  for (const auto& vm : d.vms()) {
    if (vm.host == dest || vm.capacity > free) continue;
    const topo::RackId rack = test_topology().node(vm.host).rack;
    if (rack == test_topology().node(dest).rack) continue;
    demands.push_back(demand_for(d, rack, {vm.id}, {dest}));
    queued_capacity += vm.capacity;
    if (queued_capacity > 2 * free + 40) break;
  }
  ASSERT_GT(queued_capacity, free);

  core::DistributedMigrationProtocol protocol(d, model, core::SheriffConfig{});
  const auto result = protocol.run(std::move(demands));
  // Destination never over capacity; the overflow is rejected/unplaced.
  EXPECT_LE(d.host_used_capacity(dest), d.host_capacity());
  EXPECT_FALSE(result.plan.unplaced.empty());
  EXPECT_GT(result.plan.rejects + result.plan.unplaced.size(), 0u);
  EXPECT_GT(result.plan.moves.size(), 0u);  // FCFS winners landed
}

TEST(Protocol, DependencyRaceCountsAsConflict) {
  auto d = make_deployment(83);
  mig::MigrationCostModel model(test_topology(), d);

  // Two dependent VMs in *different* racks, both proposed to one host
  // with plenty of capacity: each delegate decision alone is fine, the
  // pair is not — the commit must catch the race.
  wl::VmId a = wl::kInvalidVm;
  wl::VmId b = wl::kInvalidVm;
  for (const auto& va : d.vms()) {
    for (const auto& vb : d.vms()) {
      if (va.id >= vb.id) continue;
      if (va.host == vb.host) continue;
      if (test_topology().node(va.host).rack == test_topology().node(vb.host).rack) continue;
      a = va.id;
      b = vb.id;
      break;
    }
    if (a != wl::kInvalidVm) break;
  }
  ASSERT_NE(a, wl::kInvalidVm);
  d.add_dependency(a, b);

  topo::NodeId dest = topo::kInvalidNode;
  for (const auto& node : test_topology().nodes()) {
    if (node.kind != topo::NodeKind::kHost) continue;
    if (d.can_place(a, node.id) && d.can_place(b, node.id) &&
        d.host_free_capacity(node.id) >= d.vm(a).capacity + d.vm(b).capacity) {
      dest = node.id;
      break;
    }
  }
  ASSERT_NE(dest, topo::kInvalidNode);

  core::SheriffConfig config;
  config.max_matching_rounds = 1;  // single round: expose the race itself
  core::DistributedMigrationProtocol protocol(d, model, config);
  const auto result = protocol.run(
      {demand_for(d, test_topology().node(d.vm(a).host).rack, {a}, {dest}),
       demand_for(d, test_topology().node(d.vm(b).host).rack, {b}, {dest})});

  // Exactly one of them lands; the other is a recorded conflict.
  EXPECT_EQ(result.plan.moves.size(), 1u);
  EXPECT_EQ(result.conflicts, 1u);
  EXPECT_NE(d.vm(a).host, d.vm(b).host);  // conflict rule intact
}

TEST(Protocol, DeterministicWithAndWithoutThreadPool) {
  sc::ThreadPool pool(4);
  auto run = [&](sc::ThreadPool* p) {
    auto d = make_deployment(84);
    mig::MigrationCostModel model(test_topology(), d);
    core::DistributedMigrationProtocol protocol(d, model, core::SheriffConfig{}, p);
    std::vector<core::MigrationDemand> demands;
    for (topo::RackId r = 0; r < 4; ++r) {
      const auto& hosts = test_topology().rack(r).hosts;
      std::vector<wl::VmId> vms;
      for (topo::NodeId h : hosts) {
        for (wl::VmId id : d.vms_on_host(h)) vms.push_back(id);
      }
      vms.resize(std::min<std::size_t>(vms.size(), 3));
      demands.push_back(
          demand_for(d, r, std::move(vms), test_topology().rack(r + 4).hosts));
    }
    return protocol.run(std::move(demands));
  };
  const auto serial = run(nullptr);
  const auto parallel = run(&pool);
  ASSERT_EQ(serial.plan.moves.size(), parallel.plan.moves.size());
  EXPECT_DOUBLE_EQ(serial.plan.total_cost, parallel.plan.total_cost);
  for (std::size_t i = 0; i < serial.plan.moves.size(); ++i) {
    EXPECT_EQ(serial.plan.moves[i].vm, parallel.plan.moves[i].vm);
    EXPECT_EQ(serial.plan.moves[i].to, parallel.plan.moves[i].to);
  }
}

TEST(Protocol, EmptyDemandsAreNoOp) {
  auto d = make_deployment(85);
  mig::MigrationCostModel model(test_topology(), d);
  core::DistributedMigrationProtocol protocol(d, model, core::SheriffConfig{});
  const auto result = protocol.run({});
  EXPECT_TRUE(result.plan.moves.empty());
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Protocol, EngineModesBothPreserveInvariants) {
  for (const auto protocol_kind :
       {core::MigrationProtocol::kMessagePassing, core::MigrationProtocol::kSerializedFcfs}) {
    core::EngineConfig config;
    config.parallel_collect = false;
    config.protocol = protocol_kind;
    wl::DeploymentOptions deploy;
    deploy.seed = 86;
    core::DistributedEngine engine(test_topology(), deploy, config);
    const auto metrics = engine.run(8);
    const auto& d = engine.deployment();
    for (const auto& node : test_topology().nodes()) {
      if (node.kind == topo::NodeKind::kHost) {
        EXPECT_LE(d.host_used_capacity(node.id), d.host_capacity());
      }
    }
    for (wl::VmId x = 0; x < d.vm_count(); ++x) {
      for (wl::VmId y : d.dependencies().neighbors(x)) {
        EXPECT_NE(d.vm(x).host, d.vm(y).host);
      }
    }
    std::size_t migrations = 0;
    for (const auto& m : metrics) migrations += m.migrations;
    EXPECT_GT(migrations, 0u);
  }
}
