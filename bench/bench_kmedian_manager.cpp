// Sec. V-A head-to-head: three centralized-or-regional strategies migrate
// the *same* 5 % alerted VM set from identical initial states —
//
//   * regional Sheriff (per-rack shims, one-hop regions),
//   * the exhaustive global matching ("OPT" of Fig. 11),
//   * the paper's Sec. V-A reduction: k-median (Alg. 5 local search) picks
//     destination ToRs, then matching within the chosen racks.
//
// The k-median manager sits between the two: near-global quality at a
// fraction of the global search space.

#include <algorithm>
#include <iostream>

#include "bench_support.hpp"
#include "common/rng.hpp"
#include "obs/timing.hpp"
#include "common/table.hpp"
#include "core/centralized_manager.hpp"
#include "core/kmedian_planner.hpp"
#include "migration/cost_model.hpp"
#include "topology/fat_tree.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Sec. V-A", "k-median manager vs regional Sheriff vs global matching",
      "the k-median reduction solves VMMIGRATION with bounded loss (3 + 2/p) while "
      "searching far less than the global matching");

  common::Table table({"pods", "strategy", "migrated", "total cost", "cost vs OPT",
                       "search space", "seconds"});

  for (int pods : {8, 16, 24}) {
    topo::FatTreeOptions topt;
    topt.pods = pods;
    topt.hosts_per_rack = 2;
    topt.tor_agg_gbps = 1.0;
    const auto topology = topo::build_fat_tree(topt);
    const core::KMedianPlanner planner(topology);
    const auto seed = static_cast<std::uint64_t>(5100 + pods);

    // Shared alerted set (recomputed per strategy from the same seed).
    const auto comparison = bench::compare_managers(topology, 0.05, seed, pods);
    const double opt_cost = comparison.centralized_cost;

    table.begin_row()
        .add(pods)
        .add("sheriff (regional)")
        .add(comparison.sheriff_migrations)
        .add(comparison.sheriff_cost, 1)
        .add(opt_cost > 0 ? comparison.sheriff_cost / opt_cost : 0.0, 3)
        .add(comparison.sheriff_space)
        .add(comparison.sheriff_seconds, 3);
    table.begin_row()
        .add(pods)
        .add("global matching (OPT)")
        .add(comparison.centralized_migrations)
        .add(comparison.centralized_cost, 1)
        .add(1.0, 3)
        .add(comparison.centralized_space)
        .add(comparison.centralized_seconds, 3);

    // k-median manager on a fresh identical deployment.
    {
      wl::Deployment deployment(topology, bench::bench_deployment_options(seed));
      common::Pcg32 pick(seed ^ 0xa1e57UL);
      std::vector<wl::VmId> pool;
      for (const auto& vm : deployment.vms()) {
        if (!vm.delay_sensitive) pool.push_back(vm.id);
      }
      pick.shuffle(pool);
      pool.resize(std::max<std::size_t>(1, pool.size() / 20));
      std::sort(pool.begin(), pool.end());

      mig::MigrationCostModel cost_model(topology, deployment);
      core::KMedianMigrationManager::Options options;
      // A handful of well-placed destination racks suffices; the local
      // search neighborhood (and the bench) stays small.
      options.destination_racks = 8;
      options.local_search_p = 1;
      core::KMedianMigrationManager manager(deployment, cost_model, planner, options);
      obs::Stopwatch watch;
      const auto plan = manager.migrate(pool);
      table.begin_row()
          .add(pods)
          .add("k-median + matching (Sec. V-A)")
          .add(plan.moves.size())
          .add(plan.total_cost, 1)
          .add(opt_cost > 0 ? plan.total_cost / opt_cost : 0.0, 3)
          .add(plan.search_space)
          .add(watch.elapsed_seconds(), 3);
    }
  }
  table.print(std::cout);
  std::cout << "\nnote: the alerted sets coincide across strategies (same seed), so the\n"
               "cost columns are directly comparable per pod count.\n";
  return 0;
}
