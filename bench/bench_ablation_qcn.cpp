// Ablation: QCN end-host rate control (Sec. III-A.2) on vs off under a
// congested fabric. With the reaction point active, senders back off on
// congestion feedback, queues stay near equilibrium, and fewer switch
// alerts reach the shims.

#include <iostream>

#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "topology/fat_tree.hpp"

namespace {

struct ModeTotals {
  std::size_t congested_switch_rounds = 0;
  std::size_t switch_alerts = 0;
  std::size_t reroutes = 0;
  std::size_t rate_limited_flow_rounds = 0;
  double mean_peak_utilization = 0.0;
};

ModeTotals run(const sheriff::topo::Topology& topology, bool qcn) {
  using namespace sheriff;
  core::EngineConfig config;
  config.parallel_collect = false;
  config.qcn_rate_control = qcn;
  config.flow_demand_scale_gbps = 0.9;
  auto deploy = bench::bench_deployment_options(33);
  deploy.dependency_degree = 2.0;
  core::DistributedEngine engine(topology, deploy, config);

  ModeTotals totals;
  const int rounds = 20;
  for (int r = 0; r < rounds; ++r) {
    const auto m = engine.run_round();
    totals.congested_switch_rounds += m.congested_switches;
    totals.switch_alerts += m.switch_alerts;
    totals.reroutes += m.reroutes;
    totals.rate_limited_flow_rounds += m.rate_limited_flows;
    totals.mean_peak_utilization += m.max_link_utilization;
  }
  totals.mean_peak_utilization /= rounds;
  return totals;
}

}  // namespace

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Ablation E", "QCN end-host rate control on vs off",
      "Sec. III-A.2 design point: reacting to QCN feedback at the sender eases the "
      "congestion itself, leaving less for reroute/migration to clean up");

  topo::FatTreeOptions topt;
  topt.pods = 6;
  topt.hosts_per_rack = 3;
  topt.tor_agg_gbps = 1.0;
  const auto topology = topo::build_fat_tree(topt);

  const auto with_qcn = run(topology, true);
  const auto without = run(topology, false);

  common::Table table({"mode", "congested switch-rounds", "switch alerts", "reroutes",
                       "rate-limited flow-rounds", "mean peak link util"});
  const auto add_row = [&](const char* name, const ModeTotals& t) {
    table.begin_row()
        .add(name)
        .add(t.congested_switch_rounds)
        .add(t.switch_alerts)
        .add(t.reroutes)
        .add(t.rate_limited_flow_rounds)
        .add(t.mean_peak_utilization, 3);
  };
  add_row("QCN rate control on", with_qcn);
  add_row("QCN rate control off", without);
  table.print(std::cout);

  std::cout << "\nwith the reaction point active, the queue backlog that raises switch\n"
               "alerts is absorbed at the senders.\n";
  return 0;
}
