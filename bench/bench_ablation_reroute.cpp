// Ablation: reroute-first (Sec. III-B: "shim will implement flow reroute
// first and then deal with VM migration") vs migrate-only. Rerouting is
// cheap and should absorb switch congestion without extra migrations.

#include <iostream>

#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "topology/fat_tree.hpp"

namespace {

struct ModeTotals {
  std::size_t migrations = 0;
  std::size_t reroutes = 0;
  std::size_t switch_alerts = 0;
  std::size_t congested = 0;
  double cost = 0.0;
  double final_stddev = 0.0;
};

ModeTotals run(const sheriff::topo::Topology& topology, bool reroute_first) {
  using namespace sheriff;
  core::EngineConfig config;
  config.parallel_collect = false;
  config.sheriff.reroute_first = reroute_first;
  config.flow_demand_scale_gbps = 0.9;  // push the fabric into congestion
  auto deploy = bench::bench_deployment_options(55);
  deploy.dependency_degree = 2.0;       // more flows
  core::DistributedEngine engine(topology, deploy, config);

  ModeTotals totals;
  for (int r = 0; r < 16; ++r) {
    const auto m = engine.run_round();
    totals.migrations += m.migrations;
    totals.reroutes += m.reroutes;
    totals.switch_alerts += m.switch_alerts;
    totals.congested += m.congested_switches;
    totals.cost += m.migration_cost;
  }
  totals.final_stddev = engine.deployment().workload_stddev();
  return totals;
}

}  // namespace

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Ablation C", "reroute-first vs migrate-only under switch congestion",
      "Sec. III-B design choice: flow rerouting is cheaper than migration, so "
      "handling outer-switch alerts by rerouting should cut migration cost");

  topo::FatTreeOptions topt;
  topt.pods = 6;
  topt.hosts_per_rack = 3;
  topt.tor_agg_gbps = 1.0;  // narrow uplinks: congestion actually happens
  const auto topology = topo::build_fat_tree(topt);

  const auto with_reroute = run(topology, true);
  const auto without = run(topology, false);

  common::Table table({"mode", "switch alerts", "congested switch-rounds", "reroutes",
                       "migrations", "migration cost", "final stddev %"});
  const auto add_row = [&](const char* name, const ModeTotals& t) {
    table.begin_row()
        .add(name)
        .add(t.switch_alerts)
        .add(t.congested)
        .add(t.reroutes)
        .add(t.migrations)
        .add(t.cost, 1)
        .add(t.final_stddev, 2);
  };
  add_row("reroute-first (paper)", with_reroute);
  add_row("migrate-only", without);
  table.print(std::cout);

  std::cout << "\nreroute-first absorbs switch congestion with cheap path changes; "
               "migrate-only answers the same alerts with costly VM moves.\n";
  return 0;
}
