// Figure 12: the search space (candidate VM/host pairs examined while
// matching) of regional Sheriff vs the centralized manager on Fat-Tree.
// The paper shows the centralized search space exploding with size while
// Sheriff's stays small — which is why Sheriff is much faster.

#include <iostream>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 12", "matching search space: Sheriff vs centralized manager, Fat-Tree",
      "the searching space of regional Sheriff is much smaller than a centralized "
      "manager which takes all hosts into consideration; the gap widens with size");

  const std::vector<int> pods{8, 16, 24, 32, 40, 48};
  const auto sweep = bench::sweep_fat_tree(pods, 1201);
  std::cout << '\n';
  bench::print_comparison_table(sweep, "pods");

  std::vector<double> sheriff_curve;
  std::vector<double> central_curve;
  for (const auto& p : sweep) {
    sheriff_curve.push_back(static_cast<double>(p.sheriff_space));
    central_curve.push_back(static_cast<double>(p.centralized_space));
  }
  common::PlotOptions plot;
  plot.title = "\nsearch space (pairs examined) vs pods";
  plot.series_names = {"sheriff", "centralized"};
  const std::vector<std::vector<double>> curves{sheriff_curve, central_curve};
  std::cout << common::render_plot(curves, plot);

  const auto& last = sweep.back();
  const double gap = last.sheriff_space > 0
                         ? static_cast<double>(last.centralized_space) /
                               static_cast<double>(last.sheriff_space)
                         : 0.0;
  std::cout << "\nat " << last.size_param << " pods the centralized manager examines "
            << common::format_fixed(gap, 1) << "x more candidate pairs than Sheriff"
            << (gap > 5.0 ? " -> matches Fig. 12's widening gap\n"
                          : " -> gap smaller than expected\n");
  return 0;
}
