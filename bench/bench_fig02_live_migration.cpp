// Figure 2: the six-stage live VM migration timeline (Sec. III-C; Clark
// et al.). The paper's figure is schematic; this bench regenerates the
// actual stage durations our model produces across workload and bandwidth
// scenarios, and checks the headline property the paper cites — downtime
// is a tiny slice (their reference: ~60 ms) of the total.

#include <iostream>

#include "bench_support.hpp"
#include "common/table.hpp"
#include "migration/live_migration.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 2", "six-stage pre-copy live migration timeline",
      "iterative pre-copy shrinks the residue each round; the stop&copy downtime is "
      "a short period (the paper cites ~60 ms) unless pages dirty faster than the "
      "link can copy");

  struct Scenario {
    const char* name;
    mig::LiveMigrationParams params;
  };
  std::vector<Scenario> scenarios;
  {
    mig::LiveMigrationParams p;  // idle VM on a fast link
    p.memory_gb = 2.0;
    p.dirty_rate_gbps = 0.05;
    p.bandwidth_gbps = 10.0;
    scenarios.push_back({"idle VM, 10G link", p});
  }
  {
    mig::LiveMigrationParams p;  // typical
    p.memory_gb = 4.0;
    p.dirty_rate_gbps = 0.3;
    p.bandwidth_gbps = 1.0;
    scenarios.push_back({"typical VM, 1G link", p});
  }
  {
    mig::LiveMigrationParams p;  // busy
    p.memory_gb = 8.0;
    p.dirty_rate_gbps = 0.7;
    p.bandwidth_gbps = 1.0;
    scenarios.push_back({"write-heavy VM, 1G link", p});
  }
  {
    mig::LiveMigrationParams p;  // pathological
    p.memory_gb = 4.0;
    p.dirty_rate_gbps = 1.5;
    p.bandwidth_gbps = 1.0;
    scenarios.push_back({"dirtying faster than copying", p});
  }

  common::Table table({"scenario", "t1 init s", "t2 pre-copy s", "rounds", "t3 downtime ms",
                       "t4 commit s", "total s", "moved GB", "downtime share %"});
  for (const auto& s : scenarios) {
    const auto t = mig::simulate_live_migration(s.params);
    table.begin_row()
        .add(s.name)
        .add(t.t1_init_seconds, 2)
        .add(t.t2_precopy_seconds, 2)
        .add(t.precopy_rounds)
        .add(t.t3_downtime_seconds * 1e3, 1)
        .add(t.t4_commit_seconds, 2)
        .add(t.total_seconds(), 2)
        .add(t.transferred_gb, 2)
        .add(100.0 * t.t3_downtime_seconds / t.total_seconds(), 2);
  }
  table.print(std::cout);

  std::cout << "\nthe convergent scenarios suspend the VM for well under a second —\n"
               "consistent with the paper's decision to treat downtime cost as zero —\n"
               "while the pathological one shows why pre-copy needs a round bound.\n";
  return 0;
}
