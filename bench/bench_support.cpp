#include "bench_support.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "obs/timing.hpp"
#include "snapshot/archive.hpp"
#include "snapshot/checkpoint.hpp"
#include "common/table.hpp"
#include "migration/cost_model.hpp"
#include "migration/request.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"

namespace sheriff::bench {

void print_figure_header(const std::string& figure_id, const std::string& description,
                         const std::string& paper_expectation) {
  std::cout << "==============================================================\n"
            << figure_id << " — " << description << "\n"
            << "paper expectation: " << paper_expectation << "\n"
            << "==============================================================\n";
}

void run_rounds(core::DistributedEngine& engine, std::size_t rounds,
                const snapshot::CheckpointCli& checkpoints, const std::string& run_tag) {
  if (checkpoints.checkpoint_every == 0 && checkpoints.resume_path.empty()) {
    engine.run(rounds);
    return;
  }
  snapshot::CheckpointCli scoped = checkpoints;
  scoped.checkpoint_prefix = checkpoints.checkpoint_prefix + "." + run_tag;
  if (!scoped.resume_path.empty()) {
    // Probe without committing: a checkpoint binds to one run's
    // topology+config, and a multi-scenario bench hits every run with the
    // same --resume path. Let the fingerprint decide; roll the engine back
    // if the load rejected the file partway through.
    const std::vector<std::uint8_t> pristine = core::Checkpoint::serialize(engine);
    try {
      core::Checkpoint::load(engine, scoped.resume_path);
      std::cout << "  [" << run_tag << "] resumed from " << scoped.resume_path << " at round "
                << engine.rounds_run() << "\n";
    } catch (const snapshot::SnapshotError& e) {
      core::Checkpoint::deserialize(engine, pristine);
      std::cout << "  [" << run_tag << "] checkpoint does not match this run (" << e.what()
                << "); starting fresh\n";
    }
    scoped.resume_path.clear();  // handled here, not by run_with_checkpoints
  }
  (void)snapshot::run_with_checkpoints(engine, rounds, scoped);
}

wl::DeploymentOptions bench_deployment_options(std::uint64_t seed) {
  wl::DeploymentOptions options;
  options.seed = seed;
  options.vms_per_host = 3.0;
  options.max_vm_capacity = 20;  // Sec. VI-B: "VM capacity is set up to 20"
  options.placement = wl::PlacementPolicy::kSkewed;
  return options;
}

BalanceResult run_balance(const topo::Topology& topology, std::size_t rounds,
                          std::uint64_t seed) {
  core::EngineConfig config;
  // Sec. VI-B cost settings: C_r = 100, delta = eta = 1, C_d = 1.
  config.sheriff.cost.computing_cost = 100.0;
  config.sheriff.cost.delta = 1.0;
  config.sheriff.cost.eta = 1.0;
  config.sheriff.cost.unit_distance_cost = 1.0;

  config.sheriff.receiver_max_load_percent = 35.0;  // spread onto cool hosts

  auto deploy = bench_deployment_options(seed);
  deploy.skew_weight = 12.0;  // start visibly unbalanced, like Fig. 9/10
  deploy.skew_hot_fraction = 0.15;
  deploy.hot_vm_fraction = 0.1;
  deploy.hot_host_bias = 5.0;  // the packed hosts are also the busy ones

  core::DistributedEngine engine(topology, deploy, config);
  BalanceResult result;
  result.stddev_by_round.push_back(engine.deployment().workload_stddev());
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto m = engine.run_round();
    result.stddev_by_round.push_back(m.workload_stddev_after);
    result.total_migrations += m.migrations;
    result.total_alerts += m.host_alerts + m.tor_alerts + m.switch_alerts;
  }
  return result;
}

namespace {

/// 5 % of VMs, uniformly (skipping delay-sensitive ones, which PRIORITY
/// would eliminate anyway).
std::vector<wl::VmId> sample_alerted(const wl::Deployment& deployment, double fraction,
                                     std::uint64_t seed) {
  common::Pcg32 rng(seed ^ 0xa1e57UL);
  std::vector<wl::VmId> pool;
  for (const auto& vm : deployment.vms()) {
    if (!vm.delay_sensitive) pool.push_back(vm.id);
  }
  rng.shuffle(pool);
  const auto take = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(pool.size())));
  pool.resize(std::min(take, pool.size()));
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace

ManagerComparison compare_managers(const topo::Topology& topology, double alert_fraction,
                                   std::uint64_t seed, std::size_t size_param) {
  ManagerComparison out;
  out.size_param = size_param;
  out.hosts = topology.host_count();
  core::SheriffConfig config;  // paper cost defaults

  // --- Sheriff: per-rack shims, one-hop regions, same alerted VM set.
  {
    wl::Deployment deployment(topology, bench_deployment_options(seed));
    const auto alerted = sample_alerted(deployment, alert_fraction, seed);
    out.alerted = alerted.size();
    mig::MigrationCostModel cost_model(topology, deployment, config.cost);
    mig::AdmissionBroker broker(deployment);

    // Group the alerted VMs by their rack: each shim migrates its own.
    std::vector<std::vector<wl::VmId>> by_rack(topology.rack_count());
    for (wl::VmId id : alerted) {
      by_rack[topology.node(deployment.vm(id).host).rack].push_back(id);
    }
    obs::Stopwatch watch;
    for (topo::RackId r = 0; r < topology.rack_count(); ++r) {
      if (by_rack[r].empty()) continue;
      core::ShimController shim(r, topology, config);
      core::VmMigrationScheduler scheduler(deployment, cost_model, broker,
                                           config.max_matching_rounds);
      const auto plan = scheduler.migrate(by_rack[r], shim.region_target_hosts());
      out.sheriff_cost += plan.total_cost;
      out.sheriff_space += plan.search_space;
      out.sheriff_migrations += plan.moves.size();
    }
    out.sheriff_seconds = watch.elapsed_seconds();
  }

  // --- Centralized: identical initial state (same seed), global search.
  {
    wl::Deployment deployment(topology, bench_deployment_options(seed));
    const auto alerted = sample_alerted(deployment, alert_fraction, seed);
    mig::MigrationCostModel cost_model(topology, deployment, config.cost);
    core::CentralizedManager manager(deployment, cost_model, config);
    obs::Stopwatch watch;
    const auto plan = manager.migrate(alerted);
    out.centralized_seconds = watch.elapsed_seconds();
    out.centralized_cost = plan.total_cost;
    out.centralized_space = plan.search_space;
    out.centralized_migrations = plan.moves.size();
  }
  return out;
}

std::vector<ManagerComparison> sweep_fat_tree(const std::vector<int>& pod_counts,
                                              std::uint64_t seed) {
  std::vector<ManagerComparison> out;
  for (int pods : pod_counts) {
    topo::FatTreeOptions options;
    options.pods = pods;
    options.hosts_per_rack = 2;
    // Sec. VI-B: "available bandwidth between core and aggregation is 10,
    // between aggregation and ToR is 1".
    options.tor_agg_gbps = 1.0;
    options.agg_core_gbps = 10.0;
    const auto topology = topo::build_fat_tree(options);
    out.push_back(compare_managers(topology, 0.05, seed + static_cast<std::uint64_t>(pods),
                                   static_cast<std::size_t>(pods)));
    std::cout << "  swept pods=" << pods << " (" << out.back().hosts << " hosts, "
              << out.back().alerted << " alerted)\n";
  }
  return out;
}

std::vector<ManagerComparison> sweep_bcube(const std::vector<int>& switch_counts,
                                           std::uint64_t seed) {
  std::vector<ManagerComparison> out;
  for (int n : switch_counts) {
    topo::BCubeOptions options;
    options.ports = n;
    options.levels = 1;
    const auto topology = topo::build_bcube(options);
    out.push_back(compare_managers(topology, 0.05, seed + static_cast<std::uint64_t>(n),
                                   static_cast<std::size_t>(n)));
    std::cout << "  swept switches/level=" << n << " (" << out.back().hosts << " hosts, "
              << out.back().alerted << " alerted)\n";
  }
  return out;
}

void print_comparison_table(const std::vector<ManagerComparison>& sweep,
                            const std::string& size_label) {
  common::Table table({size_label, "hosts", "alerted", "sheriff cost", "optimal cost",
                       "cost ratio", "sheriff space", "central space", "space ratio",
                       "sheriff s", "central s"});
  for (const auto& point : sweep) {
    const double cost_ratio =
        point.centralized_cost > 0.0 ? point.sheriff_cost / point.centralized_cost : 0.0;
    const double space_ratio =
        point.sheriff_space > 0
            ? static_cast<double>(point.centralized_space) /
                  static_cast<double>(point.sheriff_space)
            : 0.0;
    table.begin_row()
        .add(point.size_param)
        .add(point.hosts)
        .add(point.alerted)
        .add(point.sheriff_cost, 1)
        .add(point.centralized_cost, 1)
        .add(cost_ratio, 3)
        .add(point.sheriff_space)
        .add(point.centralized_space)
        .add(space_ratio, 1)
        .add(point.sheriff_seconds, 3)
        .add(point.centralized_seconds, 3);
  }
  table.print(std::cout);
}

std::vector<ScaleScenario> make_scale_scenarios() {
  std::vector<ScaleScenario> scenarios;
  topo::FatTreeOptions ft;
  ft.pods = 16;
  ft.hosts_per_rack = 4;
  ft.tor_agg_gbps = 1.0;  // Sec. VI-B capacities: contention like Fig. 11/12
  scenarios.push_back({"fat_tree_k16", topo::build_fat_tree(ft), 12});
  ft.pods = 24;
  scenarios.push_back({"fat_tree_k24", topo::build_fat_tree(ft), 6});
  // Sec. V-A centralized k-median reduction: the manage phase is the
  // planner + Alg. 5 local search + matching, exercising the fast
  // delta-evaluated solver against the naive per-round rebuild + scan.
  ft.pods = 16;
  scenarios.push_back(
      {"fat_tree_k16_kmedian", topo::build_fat_tree(ft), 12, core::ManagerMode::kKMedian});
  // Regional-sharding ablation on the largest fabric: every cache stays on
  // in both legs; only the manage phase differs (legacy interleaved sweep
  // vs 8 contiguous rack shards with the per-rack flow index and the
  // ordered claim commit). The gated manage_ratio is therefore the
  // algorithmic win of sharding alone, even on a single-core runner. The
  // workload is shaped so congestion sits at the agg–core layer: one hot
  // core/agg switch alerts dozens of racks at once, so the legacy sweep
  // pays an O(flows) F-set scan plus a reroute pass per alerted shim,
  // while the sharded commit coalesces the duplicate claims into one.
  ScaleScenario k32;
  k32.name = "fat_tree_k32";
  ft.pods = 32;
  ft.hosts_per_rack = 2;
  ft.host_link_gbps = 10.0;
  ft.tor_agg_gbps = 10.0;
  ft.agg_core_gbps = 1.0;
  k32.topology = topo::build_fat_tree(ft);
  k32.rounds = 4;
  k32.shard_ablation = true;
  k32.deploy.placement = wl::PlacementPolicy::kUniform;
  k32.deploy.hot_vm_fraction = 0.0;  // alerts come from the fabric, not hot VMs
  k32.deploy.dependency_degree = 2.0;
  k32.flow_demand_scale_gbps = 2.0;
  k32.reroute_fraction = 0.3;
  k32.max_matching_rounds = 4;
  scenarios.push_back(std::move(k32));

  topo::BCubeOptions bc;
  bc.ports = 4;
  bc.levels = 2;
  scenarios.push_back({"bcube_4_2", topo::build_bcube(bc), 30});
  return scenarios;
}

core::EngineConfig scale_engine_config(const ScaleScenario& scenario, bool optimized) {
  core::EngineConfig config;
  config.sheriff.cost.computing_cost = 100.0;  // Sec. VI-B settings
  config.mode = scenario.mode;
  const bool caches = scenario.shard_ablation || optimized;
  config.incremental_fair_share = caches;
  config.route_cache = caches;
  config.retain_cost_trees = caches;
  config.partner_rooted_costs = caches;
  config.shared_leaf_cost_trees = caches;
  config.fast_kmedian = caches;
  config.cost_surface = caches;
  config.cost_pruning = caches;
  config.prewarm_cost_rows = caches;
  config.parallel_workload = caches;
  if (scenario.shard_ablation) {
    config.sharded_manage = optimized;
    config.manage_shards = scenario.manage_shards;
  }
  config.flow_demand_scale_gbps = scenario.flow_demand_scale_gbps;
  config.sheriff.reroute_fraction = scenario.reroute_fraction;
  config.sheriff.max_matching_rounds = scenario.max_matching_rounds;
  return config;
}

}  // namespace sheriff::bench
