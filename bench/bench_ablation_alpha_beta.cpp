// Ablation: the PRIORITY capacity fractions α (switch alerts) and β (ToR
// alerts). The paper presents α/β as "different portions of capacity for
// migration since it is not necessary to migrate all VMs" but does not
// sweep them; this bench does, showing the balance/cost trade-off.

#include <iostream>

#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "topology/fat_tree.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Ablation A", "PRIORITY capacity fractions alpha/beta",
      "design-choice sweep (not a paper figure): larger fractions move more load "
      "per alert — better balance, higher migration cost");

  topo::FatTreeOptions topt;
  topt.pods = 6;
  topt.hosts_per_rack = 3;
  topt.tor_agg_gbps = 1.0;  // narrow uplinks so ToR/switch alerts occur
  const auto topology = topo::build_fat_tree(topt);

  common::Table table({"alpha", "beta", "migrations", "reroutes", "total cost",
                       "final stddev %", "tor alerts"});
  for (double alpha : {0.1, 0.3, 0.5}) {
    for (double beta : {0.1, 0.2, 0.4}) {
      core::EngineConfig config;
      config.parallel_collect = false;
      config.sheriff.alpha = alpha;
      config.sheriff.beta = beta;
      config.flow_demand_scale_gbps = 0.9;  // congested fabric
      auto deploy = bench::bench_deployment_options(77);
      deploy.skew_weight = 8.0;
      deploy.hot_host_bias = 4.0;
      deploy.dependency_degree = 2.0;
      core::DistributedEngine engine(topology, deploy, config);

      std::size_t migrations = 0;
      std::size_t reroutes = 0;
      std::size_t tor_alerts = 0;
      double cost = 0.0;
      for (int r = 0; r < 12; ++r) {
        const auto m = engine.run_round();
        migrations += m.migrations;
        reroutes += m.reroutes;
        tor_alerts += m.tor_alerts;
        cost += m.migration_cost;
      }
      table.begin_row()
          .add(alpha, 1)
          .add(beta, 1)
          .add(migrations)
          .add(reroutes)
          .add(cost, 1)
          .add(engine.deployment().workload_stddev(), 2)
          .add(tor_alerts);
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: beta scales how much a ToR alert offloads; alpha scales the\n"
               "switch-alert selection feeding FLOWREROUTE.\n";
  return 0;
}
