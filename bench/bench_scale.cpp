// Scale bench for the per-round hot path: run the engine naive (from-scratch
// fair share, one Dijkstra per routing query, cost-model trees discarded
// every round — the pre-optimization behavior) and optimized (incremental
// FairShareSolver, router tree/path caches, retained + partner-rooted +
// leaf-shared cost trees, fast k-median, per-round cost surface with
// bound-guarded pruning, parallel workload advance) on the evaluation
// fabrics, and report rounds/sec, per-phase wall time, and the speedup.
// Emits machine-readable BENCH_scale.json next to the table; the
// CI perf gate (tools/check_bench_scale.py) compares the *ratios* — they
// are machine-independent — against bench/baselines/BENCH_scale_baseline.json.
//
// Usage: bench_scale [output.json]

#include <cstddef>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "obs/timing.hpp"
#include "core/engine.hpp"

namespace {

using namespace sheriff;

using Scenario = bench::ScaleScenario;

struct RunResult {
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  core::PhaseProfile phases;
  net::FairShareSolver::Stats fair_share;
  std::size_t fair_share_components = 0;
  std::size_t fair_share_arena_bytes = 0;
  net::RouterCacheStats router;

  /// Network hot path: allocation + routing (workload_ns holds the
  /// routing queries; fair_share_ns the water-fill).
  [[nodiscard]] double net_ns() const {
    return static_cast<double>(phases.fair_share_ns + phases.workload_ns);
  }
};

struct ScenarioResult {
  std::string name;
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t vms = 0;
  std::size_t flows = 0;
  std::size_t rounds = 0;
  RunResult naive;
  RunResult optimized;
  double speedup = 0.0;
  double manage_ratio = 0.0;   ///< naive manage_ns / optimized manage_ns
  double net_ratio = 0.0;      ///< naive (fair_share+route) / optimized (fair_share+route)
  double decision_ratio = 0.0; ///< naive manage_decision_ns / optimized manage_decision_ns
};

RunResult run_engine(const Scenario& scenario, bool optimized, std::size_t* vms,
                     std::size_t* flows, const snapshot::CheckpointCli& checkpoints) {
  const core::EngineConfig config = bench::scale_engine_config(scenario, optimized);
  core::DistributedEngine engine(scenario.topology, scenario.deploy, config);
  if (vms != nullptr) *vms = engine.deployment().vm_count();
  if (flows != nullptr) *flows = engine.flows().size();

  RunResult result;
  obs::Stopwatch watch;
  bench::run_rounds(engine, scenario.rounds, checkpoints,
                    scenario.name + (optimized ? ".opt" : ".naive"));
  result.seconds = watch.elapsed_seconds();
  result.rounds_per_sec = static_cast<double>(scenario.rounds) / result.seconds;
  result.phases = engine.phase_profile();
  result.fair_share = engine.fair_share_solver().stats();
  result.fair_share_components = engine.fair_share_solver().component_count();
  result.fair_share_arena_bytes = engine.fair_share_solver().arena_bytes();
  result.router = engine.router().cache_stats();
  return result;
}

void emit_phases(std::ostream& os, const core::PhaseProfile& p, const char* indent) {
  os << indent << "\"phases_ns\": {"
     << "\"fault\": " << p.fault_ns << ", "
     << "\"workload_route\": " << p.workload_ns << ", "
     << "\"fair_share\": " << p.fair_share_ns << ", "
     << "\"fair_share_build\": " << p.fair_share_build_ns << ", "
     << "\"fair_share_fill\": " << p.fair_share_fill_ns << ", "
     << "\"queue\": " << p.queue_ns << ", "
     << "\"predict\": " << p.predict_ns << ", "
     << "\"manage\": " << p.manage_ns << ", "
     << "\"manage_decision\": " << p.manage_decision_ns << ", "
     << "\"manage_kmedian\": " << p.manage_kmedian_ns << ", "
     << "\"manage_schedule\": " << p.manage_schedule_ns << ", "
     << "\"manage_commit\": " << p.manage_commit_ns << ", "
     << "\"manage_shard_propose\": [";
  for (std::size_t s = 0; s < p.manage_shard_propose_ns.size(); ++s) {
    os << (s > 0 ? ", " : "") << p.manage_shard_propose_ns[s];
  }
  os << "]}";
}

void emit_run(std::ostream& os, const RunResult& r, const char* name, bool optimized) {
  os << "    \"" << name << "\": {\n"
     << "      \"seconds\": " << r.seconds << ",\n"
     << "      \"rounds_per_sec\": " << r.rounds_per_sec << ",\n";
  emit_phases(os, r.phases, "      ");
  if (optimized) {
    os << ",\n      \"fair_share\": {\"solves\": " << r.fair_share.solves
       << ", \"full_rebuilds\": " << r.fair_share.full_rebuilds
       << ", \"affected_flows\": " << r.fair_share.affected_flows
       << ", \"reused_flows\": " << r.fair_share.reused_flows
       << ", \"components\": " << r.fair_share_components
       << ", \"arena_bytes\": " << r.fair_share_arena_bytes << "},\n"
       << "      \"router\": {\"tree_hits\": " << r.router.tree_hits
       << ", \"tree_misses\": " << r.router.tree_misses
       << ", \"path_hits\": " << r.router.path_hits
       << ", \"path_misses\": " << r.router.path_misses << "}";
  }
  os << "\n    }";
}

}  // namespace

int main(int argc, char** argv) {
  const snapshot::CheckpointCli checkpoints = snapshot::parse_checkpoint_cli(argc, argv);
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_scale.json";
  if (checkpoints.checkpoint_every != 0 || !checkpoints.resume_path.empty()) {
    std::cout << "WARNING: checkpoint flags active — timings (and the emitted JSON) are\n"
              << "NOT comparable to baselines; run without --checkpoint-every/--resume\n"
              << "for the CI ratio gate.\n";
  }
  bench::print_figure_header(
      "Scale", "per-round hot path: naive recompute vs incremental/cached engine",
      "the optimized engine must clear 3x the naive rounds/sec on the k=16 "
      "Fat-Tree; the caching layers keep the allocation identical, the "
      "cost-rooting modes keep it equal-cost (FP tie-breaks aside)");

  const std::vector<Scenario> scenarios = bench::make_scale_scenarios();

  std::vector<ScenarioResult> results;
  for (const Scenario& s : scenarios) {
    ScenarioResult r;
    r.name = s.name;
    r.nodes = s.topology.node_count();
    r.links = s.topology.link_count();
    r.rounds = s.rounds;
    std::cout << "\n== " << s.name << " (" << r.nodes << " nodes, " << r.links
              << " links, " << s.rounds << " rounds) ==\n";
    r.naive = run_engine(s, false, &r.vms, &r.flows, checkpoints);
    std::cout << "  naive:     " << std::fixed << std::setprecision(2)
              << r.naive.rounds_per_sec << " rounds/s (" << r.naive.seconds << " s)\n";
    r.optimized = run_engine(s, true, nullptr, nullptr, checkpoints);
    r.speedup = r.optimized.rounds_per_sec / r.naive.rounds_per_sec;
    r.manage_ratio = r.optimized.phases.manage_ns > 0
                         ? static_cast<double>(r.naive.phases.manage_ns) /
                               static_cast<double>(r.optimized.phases.manage_ns)
                         : 0.0;
    r.net_ratio = r.optimized.net_ns() > 0.0 ? r.naive.net_ns() / r.optimized.net_ns() : 0.0;
    r.decision_ratio =
        r.optimized.phases.manage_decision_ns > 0
            ? static_cast<double>(r.naive.phases.manage_decision_ns) /
                  static_cast<double>(r.optimized.phases.manage_decision_ns)
            : 0.0;
    std::cout << "  optimized: " << r.optimized.rounds_per_sec << " rounds/s ("
              << r.optimized.seconds << " s)\n"
              << "  speedup:   " << std::setprecision(2) << r.speedup << "x"
              << " (manage phase " << r.manage_ratio << "x: "
              << r.naive.phases.manage_ns / 1e6 << " ms -> "
              << r.optimized.phases.manage_ns / 1e6 << " ms)\n"
              << "  net:       " << r.net_ratio << "x (fair_share+route "
              << r.naive.net_ns() / 1e6 << " ms -> " << r.optimized.net_ns() / 1e6
              << " ms; fill " << r.optimized.phases.fair_share_fill_ns / 1e6
              << " ms of build+fill "
              << (r.optimized.phases.fair_share_build_ns +
                  r.optimized.phases.fair_share_fill_ns) / 1e6
              << " ms)\n"
              << "  decision:  " << r.decision_ratio << "x (Eq.(1) kernel "
              << r.naive.phases.manage_decision_ns / 1e6 << " ms -> "
              << r.optimized.phases.manage_decision_ns / 1e6 << " ms)\n";
    if (s.shard_ablation) {
      const core::PhaseProfile& ph = r.optimized.phases;
      std::uint64_t propose_total = 0;
      for (std::uint64_t ns : ph.manage_shard_propose_ns) propose_total += ns;
      std::cout << "  shards:    " << ph.manage_shard_propose_ns.size()
                << " x propose (total " << propose_total / 1e6 << " ms), commit "
                << ph.manage_commit_ns / 1e6 << " ms\n";
    }
    std::cout << std::defaultfloat << std::setprecision(6);
    results.push_back(std::move(r));
  }

  std::ofstream os(out_path);
  os << "{\n  \"schema\": \"sheriff.bench_scale.v5\",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    os << "  {\n"
       << "    \"name\": \"" << r.name << "\",\n"
       << "    \"nodes\": " << r.nodes << ",\n"
       << "    \"links\": " << r.links << ",\n"
       << "    \"vms\": " << r.vms << ",\n"
       << "    \"flows\": " << r.flows << ",\n"
       << "    \"rounds\": " << r.rounds << ",\n";
    emit_run(os, r.naive, "naive", false);
    os << ",\n";
    emit_run(os, r.optimized, "optimized", true);
    os << ",\n    \"speedup\": " << r.speedup << ",\n    \"manage_ratio\": " << r.manage_ratio
       << ",\n    \"net_ratio\": " << r.net_ratio
       << ",\n    \"decision_ratio\": " << r.decision_ratio
       << "\n  }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
