// Figure 9: workload balance on Fat-Tree — the standard deviation of the
// servers' workload percentages falls monotonically over 24 migration
// rounds (the paper shows roughly 45 → 20).

#include <iostream>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "topology/fat_tree.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 9", "Sheriff on Fat-Tree: workload stddev vs migration round (0..24)",
      "the stddev of server workload percentages keeps going down (~45 -> ~20), "
      "i.e. the VM migration algorithm balances the network");

  topo::FatTreeOptions topt;
  topt.pods = 8;  // the paper's Fig. 1/9 instance
  topt.hosts_per_rack = 3;
  const auto topology = topo::build_fat_tree(topt);
  std::cout << "topology: " << topology.name() << " (" << topology.host_count()
            << " hosts, " << topology.rack_count() << " racks)\n\n";

  const auto result = bench::run_balance(topology, 24, 901);

  common::Table table({"migration round", "workload stddev %"});
  for (std::size_t r = 0; r < result.stddev_by_round.size(); ++r) {
    table.begin_row().add(r).add(result.stddev_by_round[r], 2);
  }
  table.print(std::cout);

  common::PlotOptions plot;
  plot.title = "\nworkload stddev (%) by migration round";
  plot.series_names = {"stddev"};
  std::cout << common::render_plot(result.stddev_by_round, plot);

  const double first = result.stddev_by_round.front();
  const double last = result.stddev_by_round.back();
  std::cout << "\nstart " << common::format_fixed(first, 2) << "% -> end "
            << common::format_fixed(last, 2) << "% ("
            << common::format_fixed(100.0 * (first - last) / first, 1) << "% reduction), "
            << result.total_migrations << " migrations, " << result.total_alerts
            << " alerts\n"
            << (last < first ? "balance improves, matching Fig. 9\n"
                             : "NO IMPROVEMENT (unexpected)\n");
  return 0;
}
