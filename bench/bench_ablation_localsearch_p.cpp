// Ablation: the Alg. 5 local-search swap size p — the paper's own knob
// (ratio 3 + 2/p, time O(n^p)). We sweep p on Fat-Tree rack-graph
// instances and report solution quality vs solutions examined: quality
// saturates quickly while the search space explodes, which is why small p
// is the right default.

#include <iostream>

#include "bench_support.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/kmedian_planner.hpp"
#include "topology/fat_tree.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Ablation F", "k-median local search: swap size p vs quality and work",
      "design-choice sweep behind Sec. VI-C: the 3 + 2/p bound tightens with p, but "
      "observed quality is already near-optimal at p = 1-2 while the neighborhood "
      "size grows combinatorially");

  topo::FatTreeOptions topt;
  topt.pods = 8;  // 32 racks
  const auto topology = topo::build_fat_tree(topt);
  const core::KMedianPlanner planner(topology);

  common::Table table({"p", "bound 3+2/p", "mean cost vs exact", "max cost vs exact",
                       "mean evaluations", "evals vs p=1"});
  common::Pcg32 rng(4040);

  // Shared instance set across p values.
  struct Instance {
    std::vector<topo::RackId> sources;
    std::size_t k;
  };
  std::vector<Instance> instances;
  for (int trial = 0; trial < 6; ++trial) {
    Instance inst;
    for (topo::RackId r = 0; r < topology.rack_count(); ++r) {
      if (rng.bernoulli(0.4)) inst.sources.push_back(r);
    }
    if (inst.sources.size() < 5) continue;
    inst.k = 2 + rng.next_below(3);
    instances.push_back(std::move(inst));
  }

  double evals_p1 = 0.0;
  for (std::size_t p = 1; p <= 4; ++p) {
    common::RunningStats ratio;
    common::RunningStats evals;
    for (const auto& inst : instances) {
      const auto approx = planner.plan(inst.sources, inst.k, p);
      const auto exact = planner.plan_exact(inst.sources, inst.k);
      if (exact.connection_cost > 1e-9) {
        ratio.add(approx.connection_cost / exact.connection_cost);
      }
      evals.add(static_cast<double>(approx.evaluations));
    }
    if (p == 1) evals_p1 = evals.mean();
    table.begin_row()
        .add(p)
        .add(3.0 + 2.0 / static_cast<double>(p), 2)
        .add(ratio.mean(), 4)
        .add(ratio.max(), 4)
        .add(evals.mean(), 0)
        .add(evals_p1 > 0 ? evals.mean() / evals_p1 : 0.0, 1);
  }
  table.print(std::cout);

  std::cout << "\nreading: past p = 2 the extra swaps buy (at most) marginal quality for a\n"
               "combinatorial increase in evaluated candidate solutions.\n";
  return 0;
}
