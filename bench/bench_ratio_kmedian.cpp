// Sec. VI-C: the approximation guarantee. VMMIGRATION reduces to k-median
// (Sec. V-A) and the Alg. 5 local search has ratio 3 + 2/p. This bench
// measures the *observed* ratio against the exhaustive optimum — for both
// the reference combinational scan and the delta-evaluated fast solver —
// on random metrics and on a real Fat-Tree rack graph, for p = 1..3.

#include <cmath>
#include <iostream>

#include "bench_support.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/kmedian_planner.hpp"
#include "graph/kmedian.hpp"
#include "graph/kmedian_fast.hpp"
#include "topology/fat_tree.hpp"

namespace {

sheriff::graph::DistanceMatrix random_metric(std::size_t n, sheriff::common::Pcg32& rng) {
  std::vector<std::pair<double, double>> pts(n);
  for (auto& p : pts) p = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
  sheriff::graph::DistanceMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      m.set(i, j, std::sqrt(dx * dx + dy * dy));
    }
  }
  return m;
}

}  // namespace

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Sec. VI-C", "k-median local search: observed ratio vs the 3 + 2/p bound",
      "VMMIGRATION is a (3 + 2/p)-approximation; observed ratios must never exceed "
      "the bound and are typically far below it");

  common::Table table({"instance family", "p", "bound 3+2/p", "trials", "ref ratio",
                       "fast ratio", "max ratio", "ref evals", "fast evals"});

  // --- Random Euclidean metrics.
  for (std::size_t p = 1; p <= 3; ++p) {
    common::RunningStats ratios;
    common::RunningStats fast_ratios;
    common::RunningStats evals;
    common::RunningStats fast_evals;
    common::Pcg32 rng(2000 + p);
    for (int trial = 0; trial < 12; ++trial) {
      const std::size_t n = 10 + rng.next_below(6);
      const auto m = random_metric(n, rng);
      graph::KMedianInstance instance;
      instance.distance = &m;
      instance.k = 2 + rng.next_below(3);
      for (std::size_t i = 0; i < n; ++i) {
        instance.clients.push_back(i);
        instance.facilities.push_back(i);
      }
      const auto approx = graph::local_search_kmedian(instance, p);
      graph::FastKMedianOptions fast_options;
      fast_options.p = p;
      const auto fast = graph::fast_kmedian(instance, fast_options);
      const auto exact = graph::exhaustive_kmedian(instance);
      if (exact.cost > 1e-9) {
        ratios.add(approx.cost / exact.cost);
        fast_ratios.add(fast.cost / exact.cost);
        evals.add(static_cast<double>(approx.evaluations));
        fast_evals.add(static_cast<double>(fast.evaluations));
      }
    }
    table.begin_row()
        .add("random euclidean")
        .add(p)
        .add(3.0 + 2.0 / static_cast<double>(p), 2)
        .add(ratios.count())
        .add(ratios.mean(), 4)
        .add(fast_ratios.mean(), 4)
        .add(std::max(ratios.max(), fast_ratios.max()), 4)
        .add(evals.mean(), 0)
        .add(fast_evals.mean(), 0);
  }

  // --- Real rack graphs: Fat-Tree T' via the Sec. V-A reduction.
  topo::FatTreeOptions topt;
  topt.pods = 6;  // 18 racks: exhaustive stays feasible
  const auto topology = topo::build_fat_tree(topt);
  const core::KMedianPlanner planner(topology);
  for (std::size_t p = 1; p <= 3; ++p) {
    common::RunningStats ratios;
    common::RunningStats fast_ratios;
    common::RunningStats evals;
    common::RunningStats fast_evals;
    common::Pcg32 rng(3000 + p);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<topo::RackId> sources;
      for (topo::RackId r = 0; r < topology.rack_count(); ++r) {
        if (rng.bernoulli(0.5)) sources.push_back(r);
      }
      if (sources.size() < 4) continue;
      const std::size_t k = 2 + rng.next_below(3);
      const auto approx = planner.plan(sources, k, p);
      core::KMedianPlanner::PlanOptions fast_options;
      fast_options.k = k;
      fast_options.p = p;
      const auto fast = planner.plan(sources, fast_options);
      const auto exact = planner.plan_exact(sources, k);
      if (exact.connection_cost > 1e-9) {
        ratios.add(approx.connection_cost / exact.connection_cost);
        fast_ratios.add(fast.connection_cost / exact.connection_cost);
        evals.add(static_cast<double>(approx.evaluations));
        fast_evals.add(static_cast<double>(fast.evaluations));
      }
    }
    table.begin_row()
        .add("fat-tree rack graph")
        .add(p)
        .add(3.0 + 2.0 / static_cast<double>(p), 2)
        .add(ratios.count())
        .add(ratios.mean(), 4)
        .add(fast_ratios.mean(), 4)
        .add(std::max(ratios.max(), fast_ratios.max()), 4)
        .add(evals.mean(), 0)
        .add(fast_evals.mean(), 0);
  }

  table.print(std::cout);
  std::cout << "\nall observed ratios (reference scan and delta-evaluated fast solver)\n"
               "are far below the worst-case 3 + 2/p guarantee, consistent with the\n"
               "paper's theoretical analysis (Sec. VI-C).\n";
  return 0;
}
