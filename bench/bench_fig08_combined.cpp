// Figure 8: the combined model — dynamic selection (Eq. 14) over two ARIMA
// and two NARNET candidates — on a trace mixing linear-seasonal and
// nonlinear segments. The paper's claim: the combination achieves a
// smaller MSE than either family alone.

#include <cmath>
#include <iostream>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/model_selection.hpp"
#include "timeseries/narnet.hpp"
#include "workload/trace_generator.hpp"

namespace {

/// A trace that alternates regimes: smooth seasonal weeks (ARIMA
/// territory) and weeks with sharp nonlinear bursts (NARNET territory).
std::vector<double> mixed_trace(std::size_t weeks, std::uint64_t seed) {
  using namespace sheriff;
  auto base = wl::make_weekly_traffic_trace(seed)->generate(48 * 7 * weeks);
  common::Pcg32 rng(seed + 17);
  for (std::size_t w = 0; w < weeks; w += 2) {  // every other week is "hard"
    for (std::size_t t = w * 48 * 7; t < (w + 1) * 48 * 7 && t < base.size(); ++t) {
      const double phase = static_cast<double>(t % 48) / 48.0;
      base[t] += 18.0 * std::fabs(std::sin(3.0 * 3.14159265 * phase));  // kinked bursts
      base[t] += rng.normal(0.0, 1.0);
    }
  }
  return base;
}

}  // namespace

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 8", "combined model (dynamic ARIMA+NARNET selection) on a mixed trace",
      "the combined model attains a smaller MSE than either single model — "
      "\"a dataset may contain both linear data and nonlinear data\"");

  const auto series = mixed_trace(6, 801);
  const std::size_t split = series.size() / 2;
  const std::vector<double> train(series.begin(),
                                  series.begin() + static_cast<std::ptrdiff_t>(split));
  const std::vector<double> actual(series.begin() + static_cast<std::ptrdiff_t>(split),
                                   series.end());

  // Single models.
  ts::ArimaModel arima(ts::ArimaOrder{1, 1, 1});
  arima.fit(train);
  const auto arima_preds = arima.one_step_predictions(series, split);

  ts::NarNet::Options nopt;
  nopt.inputs = 12;
  nopt.hidden = 20;
  nopt.seed = 801;
  ts::NarNet narnet(nopt);
  narnet.fit(train);
  const auto narnet_preds = narnet.one_step_predictions(series, split);

  // Combined: the paper's four-candidate setup.
  ts::DynamicModelSelector selector(24);
  selector.add_model(ts::make_arima_forecaster(1, 1, 1));
  selector.add_model(ts::make_arima_forecaster(2, 0, 2));
  selector.add_model(ts::make_narnet_forecaster(12, 20, 801));
  selector.add_model(ts::make_narnet_forecaster(6, 10, 802));
  selector.fit(train);
  std::vector<double> combined_preds;
  std::vector<double> history = train;
  for (std::size_t t = split; t < series.size(); ++t) {
    combined_preds.push_back(selector.predict_next(history));
    selector.observe(series[t]);
    history.push_back(series[t]);
  }

  const double arima_mse = common::mean_squared_error(actual, arima_preds);
  const double narnet_mse = common::mean_squared_error(actual, narnet_preds);
  const double combined_mse = common::mean_squared_error(actual, combined_preds);

  common::Table table({"model", "test MSE", "vs best single"});
  table.begin_row().add("ARIMA(1,1,1)").add(arima_mse, 3).add("-");
  table.begin_row().add("NARNET(12,20)").add(narnet_mse, 3).add("-");
  table.begin_row()
      .add("combined (dynamic)")
      .add(combined_mse, 3)
      .add(common::format_fixed(100.0 * combined_mse / std::min(arima_mse, narnet_mse), 1) +
           "%");
  table.print(std::cout);

  std::cout << "\nselector usage on the test window:";
  for (std::size_t i = 0; i < selector.model_count(); ++i) {
    std::cout << " " << selector.model_name(i) << "=" << selector.selection_counts()[i];
  }
  std::cout << "\n";

  common::PlotOptions plot;
  plot.title = "\ntest window: actual vs combined prediction";
  plot.series_names = {"actual", "combined"};
  const std::vector<std::vector<double>> curves{actual, combined_preds};
  std::cout << common::render_plot(curves, plot);

  const double best_single = std::min(arima_mse, narnet_mse);
  std::cout << (combined_mse <= best_single * 1.05
                    ? "\ncombined MSE is at or below the best single model — the Fig. 8 claim "
                      "holds\n"
                    : "\ncombined MSE did NOT beat the best single model (unexpected)\n");
  return 0;
}
