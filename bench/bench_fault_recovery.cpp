// Failure drill bench: a ToR switch dies mid-run, orphaning a whole rack
// of VMs, and we measure how fast each manager mode re-places them and
// re-balances the fabric. Sheriff recovers through the dead rack's
// takeover neighbor (a regional decision over the neighbor's hosts); the
// centralized baseline re-places against every live host. The paper only
// evaluates pristine fabrics, so this is the recovery-path counterpart of
// the Fig. 11–14 comparison: same trade-off (regional search space vs
// global optimum), now on the repair path.

#include <cstddef>
#include <iostream>
#include <vector>

#include "bench_support.hpp"
#include "obs/timing.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "fault/fault_plan.hpp"
#include "topology/fat_tree.hpp"

namespace {

constexpr std::size_t kFailRound = 4;
constexpr std::size_t kRecoverRound = 18;
constexpr std::size_t kRounds = 24;

struct RecoveryResult {
  std::size_t orphaned = 0;           ///< VMs stranded when the ToR died
  std::size_t clearance_rounds = 0;   ///< rounds until no orphan remained
  bool cleared = false;
  std::size_t recovery_migrations = 0;
  std::size_t search_space = 0;
  double migration_cost = 0.0;
  double stddev_before_failure = 0.0;
  double final_stddev = 0.0;
  double seconds = 0.0;
  std::vector<std::size_t> orphan_series;
};

RecoveryResult run(const sheriff::topo::Topology& topology,
                   const sheriff::fault::FaultPlan& plan, sheriff::core::ManagerMode mode) {
  using namespace sheriff;
  core::EngineConfig config;
  config.mode = mode;
  config.fault_plan = &plan;
  auto deploy = bench::bench_deployment_options(2015);
  core::DistributedEngine engine(topology, deploy, config);

  RecoveryResult result;
  obs::Stopwatch watch;
  const auto metrics = engine.run(kRounds);
  result.seconds = watch.elapsed_seconds();

  result.stddev_before_failure = metrics[kFailRound - 1].workload_stddev_after;
  result.orphaned = metrics[kFailRound].orphaned_vms;
  result.final_stddev = metrics.back().workload_stddev_after;
  for (std::size_t r = kFailRound; r < metrics.size(); ++r) {
    result.orphan_series.push_back(metrics[r].orphaned_vms);
    result.recovery_migrations += metrics[r].recovery_migrations;
    result.search_space += metrics[r].search_space;
    result.migration_cost += metrics[r].migration_cost;
    if (!result.cleared && metrics[r].orphaned_vms == 0) {
      result.cleared = true;
      result.clearance_rounds = r - kFailRound;
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Failure drill", "Sheriff vs centralized recovery after a ToR switch failure",
      "both modes must re-place the orphaned rack within a few rounds; Sheriff "
      "pays a slightly higher placement cost for a far smaller search space, "
      "mirroring the pristine-fabric trade-off of Fig. 11-14");

  topo::FatTreeOptions topt;
  topt.pods = 8;
  topt.hosts_per_rack = 3;
  const auto topology = topo::build_fat_tree(topt);

  const auto plan = fault::FaultPlan::tor_outage(topology, 0, kFailRound, kRecoverRound);
  std::cout << "scenario: rack 0's ToR dies at round " << kFailRound << " and reboots at round "
            << kRecoverRound << " (" << topology.rack(0).hosts.size()
            << " hosts severed); metrics from the failure round onward.\n\n";

  const auto sheriff_result = run(topology, plan, core::ManagerMode::kSheriff);
  const auto central = run(topology, plan, core::ManagerMode::kCentralized);

  common::Table table({"manager", "orphaned VMs", "rounds to clear", "recovery migs",
                       "search space", "migration cost", "stddev pre-fail %", "stddev end %",
                       "seconds"});
  const auto add_row = [&](const char* name, const RecoveryResult& r) {
    table.begin_row()
        .add(name)
        .add(r.orphaned)
        .add(r.cleared ? std::to_string(r.clearance_rounds) : std::string("never"))
        .add(r.recovery_migrations)
        .add(r.search_space)
        .add(r.migration_cost, 1)
        .add(r.stddev_before_failure, 2)
        .add(r.final_stddev, 2)
        .add(r.seconds, 2);
  };
  add_row("sheriff (regional)", sheriff_result);
  add_row("centralized", central);
  table.print(std::cout);

  common::Table series({"round", "sheriff orphans", "centralized orphans"});
  for (std::size_t i = 0; i < sheriff_result.orphan_series.size(); ++i) {
    series.begin_row()
        .add(kFailRound + i)
        .add(sheriff_result.orphan_series[i])
        .add(central.orphan_series[i]);
  }
  std::cout << "\norphaned VMs per round after the failure:\n";
  series.print(std::cout);

  std::cout << "\nsheriff re-places the rack inside the takeover neighbor's region, so its\n"
               "search space stays regional even on the repair path; the centralized\n"
               "manager scans every live host for the same decision.\n";
  return 0;
}
