// Ablation: the distributed propose/decide/apply protocol vs a globally
// serialized act phase. Both implement Alg. 3/4 semantics; the protocol
// additionally exposes the real-world same-round reservation races between
// delegates (Sec. V-B's "they need to communicate between each other to
// avoid conflictions") and resolves them with at most a one-iteration
// retry penalty.

#include <iostream>

#include "bench_support.hpp"
#include "obs/timing.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "topology/fat_tree.hpp"

namespace {

struct ModeTotals {
  std::size_t migrations = 0;
  std::size_t rejects = 0;
  std::size_t conflicts = 0;
  double cost = 0.0;
  double final_stddev = 0.0;
  double seconds = 0.0;
};

ModeTotals run(const sheriff::topo::Topology& topology, sheriff::core::MigrationProtocol mode) {
  using namespace sheriff;
  core::EngineConfig config;
  config.protocol = mode;
  auto deploy = bench::bench_deployment_options(99);
  deploy.skew_weight = 10.0;
  deploy.hot_host_bias = 4.0;
  core::DistributedEngine engine(topology, deploy, config);

  ModeTotals totals;
  obs::Stopwatch watch;
  for (int r = 0; r < 16; ++r) {
    const auto m = engine.run_round();
    totals.migrations += m.migrations;
    totals.rejects += m.migration_rejects;
    totals.conflicts += m.protocol_conflicts;
    totals.cost += m.migration_cost;
  }
  totals.seconds = watch.elapsed_seconds();
  totals.final_stddev = engine.deployment().workload_stddev();
  return totals;
}

}  // namespace

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Ablation G", "message-passing protocol vs globally serialized act phase",
      "the distributed REQUEST/ACK round should reach the same balance with "
      "comparable cost, paying only rare same-round conflicts for its parallelism");

  topo::FatTreeOptions topt;
  topt.pods = 8;
  topt.hosts_per_rack = 3;
  const auto topology = topo::build_fat_tree(topt);

  const auto message = run(topology, core::MigrationProtocol::kMessagePassing);
  const auto serial = run(topology, core::MigrationProtocol::kSerializedFcfs);

  common::Table table({"protocol", "migrations", "rejects", "conflicts", "total cost",
                       "final stddev %", "seconds"});
  const auto add_row = [&](const char* name, const ModeTotals& t) {
    table.begin_row()
        .add(name)
        .add(t.migrations)
        .add(t.rejects)
        .add(t.conflicts)
        .add(t.cost, 1)
        .add(t.final_stddev, 2)
        .add(t.seconds, 2);
  };
  add_row("message-passing (default)", message);
  add_row("serialized FCFS", serial);
  table.print(std::cout);

  std::cout << "\nconflicts are the price of letting delegates decide concurrently; they\n"
               "stay rare because regions overlap little.\n";
  return 0;
}
