// Figure 6: ARIMA(1,1,1) on the weekly switch traffic trace — train on the
// first half, roll one-step-ahead predictions over the second half, and
// report the prediction bias/error, mirroring the paper's train/test plot.

#include <iostream>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/math_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "timeseries/arima.hpp"
#include "workload/trace_generator.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 6", "ARIMA(1,1,1) predicting the weekly switch traffic (50/50 train/test)",
      "the ARIMA fit tracks the seasonal traffic closely; prediction errors stay a "
      "small fraction of the signal amplitude");

  auto gen = wl::make_weekly_traffic_trace(601);
  const auto series = gen->generate(48 * 14);  // two weeks, 30-min samples
  const std::size_t split = series.size() / 2;
  const std::vector<double> train(series.begin(),
                                  series.begin() + static_cast<std::ptrdiff_t>(split));
  const std::vector<double> actual(series.begin() + static_cast<std::ptrdiff_t>(split),
                                   series.end());

  ts::ArimaModel model(ts::ArimaOrder{1, 1, 1});
  model.fit(train);
  std::cout << "fitted ARIMA(1,1,1): phi=" << model.ar_coefficients()[0]
            << " theta=" << model.ma_coefficients()[0] << " c=" << model.intercept()
            << " sigma^2=" << model.innovation_variance() << "\n\n";

  // Training (in-sample) and test (out-of-sample) one-step predictions.
  const auto train_preds = model.one_step_predictions(train, 8);
  const std::vector<double> train_actual(train.begin() + 8, train.end());
  const auto test_preds = model.one_step_predictions(series, split);

  std::vector<double> bias(actual.size());
  for (std::size_t i = 0; i < actual.size(); ++i) bias[i] = actual[i] - test_preds[i];

  common::Table table({"window", "MSE", "RMSE", "MAPE %", "mean bias", "signal stddev"});
  table.begin_row()
      .add("train (in-sample)")
      .add(common::mean_squared_error(train_actual, train_preds), 3)
      .add(common::root_mean_squared_error(train_actual, train_preds), 3)
      .add(common::mean_absolute_percentage_error(train_actual, train_preds), 2)
      .add(0.0, 3)
      .add(common::stddev(train_actual), 2);
  table.begin_row()
      .add("test (one-step)")
      .add(common::mean_squared_error(actual, test_preds), 3)
      .add(common::root_mean_squared_error(actual, test_preds), 3)
      .add(common::mean_absolute_percentage_error(actual, test_preds), 2)
      .add(common::mean(bias), 3)
      .add(common::stddev(actual), 2);
  table.print(std::cout);

  common::PlotOptions plot;
  plot.title = "\ntest window: actual vs ARIMA one-step prediction (MB)";
  plot.series_names = {"actual", "predicted"};
  const std::vector<std::vector<double>> curves{actual, test_preds};
  std::cout << common::render_plot(curves, plot);

  common::PlotOptions bias_plot;
  bias_plot.title = "\nprediction error (actual - predicted)";
  bias_plot.height = 6;
  std::cout << common::render_plot(bias, bias_plot);

  const double rel =
      common::root_mean_squared_error(actual, test_preds) / common::stddev(actual);
  std::cout << "\nrelative RMSE (error / signal stddev): " << common::format_fixed(rel, 3)
            << (rel < 0.5 ? "  -> tracks the signal closely, as in the paper\n"
                          : "  -> WEAK TRACKING (unexpected)\n");
  return 0;
}
