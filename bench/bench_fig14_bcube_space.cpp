// Figure 14: matching search space, Sheriff vs centralized manager, on
// BCube with 8..48 switches per level.

#include <iostream>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 14", "matching search space: Sheriff vs centralized manager, BCube",
      "Sheriff's regional search space stays far below the centralized manager's, "
      "so Sheriff performs much faster on BCube as well");

  const std::vector<int> switches{8, 16, 24, 32, 40, 48};
  const auto sweep = bench::sweep_bcube(switches, 1401);
  std::cout << '\n';
  bench::print_comparison_table(sweep, "sw/level");

  std::vector<double> sheriff_curve;
  std::vector<double> central_curve;
  for (const auto& p : sweep) {
    sheriff_curve.push_back(static_cast<double>(p.sheriff_space));
    central_curve.push_back(static_cast<double>(p.centralized_space));
  }
  common::PlotOptions plot;
  plot.title = "\nsearch space (pairs examined) vs switches per level";
  plot.series_names = {"sheriff", "centralized"};
  const std::vector<std::vector<double>> curves{sheriff_curve, central_curve};
  std::cout << common::render_plot(curves, plot);

  const auto& last = sweep.back();
  const double gap = last.sheriff_space > 0
                         ? static_cast<double>(last.centralized_space) /
                               static_cast<double>(last.sheriff_space)
                         : 0.0;
  std::cout << "\nat " << last.size_param << " switches/level the centralized manager "
            << "examines " << common::format_fixed(gap, 1)
            << "x more candidate pairs than Sheriff"
            << (gap > 5.0 ? " -> matches Fig. 14's widening gap\n"
                          : " -> gap smaller than expected\n");
  return 0;
}
