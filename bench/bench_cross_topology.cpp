// Cross-topology generalization: the paper claims Sheriff "can be easily
// implemented in other DCN topologies" (Sec. II-A). This bench runs the
// identical balance experiment on all three fabrics we build — Fat-Tree
// (switch-centric), BCube (server-centric), and the legacy three-tier
// tree — and compares how well regional pre-alert management balances
// each.

#include <iostream>

#include "bench_support.hpp"
#include "common/table.hpp"
#include "topology/bcube.hpp"
#include "topology/fat_tree.hpp"
#include "topology/three_tier.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Generalization", "the Fig. 9/10 balance experiment across all three fabrics",
      "Sec. II-A: Sheriff is topology-agnostic — the stddev decrease should appear "
      "on switch-centric, server-centric, and legacy tree fabrics alike");

  struct Row {
    std::string name;
    topo::Topology topology;
  };
  std::vector<Row> rows;
  {
    topo::FatTreeOptions o;
    o.pods = 8;
    o.hosts_per_rack = 2;
    rows.push_back({"fat-tree (switch-centric)", topo::build_fat_tree(o)});
  }
  {
    topo::BCubeOptions o;
    o.ports = 8;
    o.levels = 1;
    rows.push_back({"bcube (server-centric)", topo::build_bcube(o)});
  }
  {
    topo::ThreeTierOptions o;
    o.racks = 16;
    o.hosts_per_rack = 4;
    rows.push_back({"three-tier (legacy tree)", topo::build_three_tier(o)});
  }

  common::Table table({"fabric", "hosts", "racks", "stddev start %", "stddev end %",
                       "reduction %", "migrations", "alerts"});
  for (const auto& row : rows) {
    const auto result = bench::run_balance(row.topology, 24, 777);
    const double first = result.stddev_by_round.front();
    const double last = result.stddev_by_round.back();
    table.begin_row()
        .add(row.name)
        .add(row.topology.host_count())
        .add(row.topology.rack_count())
        .add(first, 2)
        .add(last, 2)
        .add(first > 0 ? 100.0 * (first - last) / first : 0.0, 1)
        .add(result.total_migrations)
        .add(result.total_alerts);
  }
  table.print(std::cout);
  std::cout << "\nall three fabrics converge — the management scheme does not depend on\n"
               "the interconnect family, as the paper claims.\n";
  return 0;
}
