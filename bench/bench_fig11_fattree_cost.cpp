// Figure 11: total VM-migration output cost, regional Sheriff vs the
// global optimal centralized manager, on Fat-Tree with 8..48 pods and 5 %
// of VMs alerted. The paper shows both curves growing with size, with
// Sheriff staying close to the optimum.

#include <iostream>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 11", "migration output cost: Sheriff (APP) vs global optimal (OPT), Fat-Tree",
      "both costs grow with pod count; the regional distributed Sheriff performs "
      "quite well even compared to a centralized optimal manager");

  const std::vector<int> pods{8, 16, 24, 32, 40, 48};
  const auto sweep = bench::sweep_fat_tree(pods, 1101);
  std::cout << '\n';
  bench::print_comparison_table(sweep, "pods");

  std::vector<double> sheriff_curve;
  std::vector<double> optimal_curve;
  for (const auto& p : sweep) {
    sheriff_curve.push_back(p.sheriff_cost);
    optimal_curve.push_back(p.centralized_cost);
  }
  common::PlotOptions plot;
  plot.title = "\ntotal migration cost vs pods (resampled x-axis)";
  plot.series_names = {"sheriff", "optimal"};
  const std::vector<std::vector<double>> curves{sheriff_curve, optimal_curve};
  std::cout << common::render_plot(curves, plot);

  double worst_ratio = 0.0;
  for (const auto& p : sweep) {
    if (p.centralized_cost > 0.0) {
      worst_ratio = std::max(worst_ratio, p.sheriff_cost / p.centralized_cost);
    }
  }
  std::cout << "\nworst sheriff/optimal cost ratio across the sweep: "
            << common::format_fixed(worst_ratio, 3)
            << (worst_ratio < 2.0 ? "  -> regional Sheriff stays close to the optimum\n"
                                  : "  -> LARGE GAP (unexpected)\n");
  return 0;
}
