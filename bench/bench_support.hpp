#pragma once
// Shared helpers for the figure-regeneration benches: standardized
// headers, the Fig. 9/10 balance experiment, and the Fig. 11–14
// sheriff-vs-centralized comparison (5 % of VMs alerted, as in Sec. VI-B).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "snapshot/checkpoint_cli.hpp"
#include "topology/topology.hpp"

namespace sheriff::bench {

/// Checkpoint-aware replacement for engine.run(rounds): honors the
/// `--checkpoint-every` / `--resume` flags parsed by
/// snapshot::parse_checkpoint_cli. Periodic saves land at
/// `<prefix>.<run_tag>.round<N>.snap` so every engine run of a bench gets
/// its own file family. A `--resume` path that does not fingerprint-match
/// this run (checkpoints bind to one topology+config) is reported and
/// skipped, not fatal — a multi-scenario bench resumes only the run the
/// checkpoint came from. Timing over a resumed/saving run is NOT
/// comparable to a flags-off run; benches must warn when flags are active.
void run_rounds(core::DistributedEngine& engine, std::size_t rounds,
                const snapshot::CheckpointCli& checkpoints, const std::string& run_tag);

/// Prints the experiment banner: which paper figure, what we measure, and
/// what qualitative shape the paper reports (so bench_output.txt documents
/// the expectation next to the measurement).
void print_figure_header(const std::string& figure_id, const std::string& description,
                         const std::string& paper_expectation);

/// Fig. 9/10: run the engine for `rounds` management rounds and record the
/// host-workload standard deviation after each (index 0 = initial state).
struct BalanceResult {
  std::vector<double> stddev_by_round;
  std::size_t total_migrations = 0;
  std::size_t total_alerts = 0;
};
BalanceResult run_balance(const topo::Topology& topology, std::size_t rounds,
                          std::uint64_t seed);

/// Fig. 11–14: alert 5 % of the VMs (uniformly, as the paper assumes) and
/// migrate them once under each manager — regional Sheriff (per-rack shims
/// with one-hop regions) vs the global centralized manager — from
/// identical initial states.
struct ManagerComparison {
  std::size_t size_param = 0;        ///< pods / switches-per-level
  std::size_t hosts = 0;
  std::size_t alerted = 0;
  double sheriff_cost = 0.0;
  double centralized_cost = 0.0;
  std::size_t sheriff_space = 0;
  std::size_t centralized_space = 0;
  std::size_t sheriff_migrations = 0;
  std::size_t centralized_migrations = 0;
  double sheriff_seconds = 0.0;
  double centralized_seconds = 0.0;
};
ManagerComparison compare_managers(const topo::Topology& topology, double alert_fraction,
                                   std::uint64_t seed, std::size_t size_param);

/// Deployment options shared by the figure benches (Sec. VI-B settings).
wl::DeploymentOptions bench_deployment_options(std::uint64_t seed);

/// One evaluation scenario of the per-round hot-path bench, shared by
/// bench_scale (naive vs optimized engine) and bench_fleet (the same five
/// fabrics swept across seeds by the fleet runner).
struct ScaleScenario {
  std::string name;
  topo::Topology topology;
  std::size_t rounds = 0;
  core::ManagerMode mode = core::ManagerMode::kSheriff;
  /// Sharded-manage ablation: both bench_scale legs run with every cache
  /// on, and only the manage phase differs — naive = the legacy
  /// interleaved select() sweep, optimized = regional shards.
  bool shard_ablation = false;
  std::size_t manage_shards = 8;
  wl::DeploymentOptions deploy = bench_deployment_options(2015);
  /// Per-scenario workload knobs (engine/Sheriff defaults when untouched).
  double flow_demand_scale_gbps = 0.4;
  double reroute_fraction = 0.5;
  std::size_t max_matching_rounds = 8;
};

/// The five canonical scale scenarios (fat-tree k16/k24/k32, the k16
/// k-median reduction, and BCube(4,2)) with their Sec. VI-B shaping.
std::vector<ScaleScenario> make_scale_scenarios();

/// The engine configuration of a scale scenario's `optimized` (every cache
/// on) or `naive` (pre-optimization recompute-everything) leg.
core::EngineConfig scale_engine_config(const ScaleScenario& scenario, bool optimized);

/// The Fig. 11/12 sweep: Fat-Tree pod counts 8..48 with the Sec. VI-B link
/// capacities (core-agg 10, agg-ToR 1).
std::vector<ManagerComparison> sweep_fat_tree(const std::vector<int>& pod_counts,
                                              std::uint64_t seed);

/// The Fig. 13/14 sweep: BCube(n, 1) with n switches per level, 8..48.
std::vector<ManagerComparison> sweep_bcube(const std::vector<int>& switch_counts,
                                           std::uint64_t seed);

/// Prints the full comparison table for a sweep (used by all four benches
/// so cost and space figures show consistent context).
void print_comparison_table(const std::vector<ManagerComparison>& sweep,
                            const std::string& size_label);

}  // namespace sheriff::bench
