// Ablation: the PRIORITY knapsack (Alg. 2) vs two naive selection rules.
// The knapsack picks the VM set that offloads the most capacity at the
// least sacrificed value; naive rules (largest-first, random) either
// sacrifice more value or offload less.

#include <algorithm>
#include <iostream>

#include "bench_support.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/priority.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"

namespace {

struct SelectionStats {
  sheriff::common::RunningStats offloaded;
  sheriff::common::RunningStats value;
};

}  // namespace

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Ablation B", "PRIORITY knapsack vs naive selection rules",
      "design-choice comparison (not a paper figure): Alg. 2's dynamic knapsack "
      "should dominate naive rules on sacrificed value at equal-or-better offload");

  topo::FatTreeOptions topt;
  topt.pods = 6;
  topt.hosts_per_rack = 3;
  const auto topology = topo::build_fat_tree(topt);
  const wl::Deployment deployment(topology, bench::bench_deployment_options(88));

  common::Pcg32 rng(404);
  SelectionStats knapsack_stats;
  SelectionStats largest_stats;
  SelectionStats random_stats;
  const int budget = 30;

  for (int trial = 0; trial < 200; ++trial) {
    // Candidate pool: VMs of a random rack.
    const auto rack = static_cast<topo::RackId>(rng.next_below(
        static_cast<std::uint32_t>(topology.rack_count())));
    std::vector<wl::VmId> candidates;
    for (topo::NodeId h : topology.rack(rack).hosts) {
      for (wl::VmId id : deployment.vms_on_host(h)) {
        if (!deployment.vm(id).delay_sensitive) candidates.push_back(id);
      }
    }
    if (candidates.size() < 3) continue;

    // Alg. 2 knapsack.
    const auto knap =
        core::priority_select(deployment, candidates, {}, core::PriorityMode::kBeta, budget);
    knapsack_stats.offloaded.add(knap.offloaded_capacity);
    knapsack_stats.value.add(knap.sacrificed_value);

    // Naive: largest capacity first until the budget is hit.
    {
      auto order = candidates;
      std::sort(order.begin(), order.end(), [&](wl::VmId a, wl::VmId b) {
        return deployment.vm(a).capacity > deployment.vm(b).capacity;
      });
      int cap = 0;
      double value = 0.0;
      for (wl::VmId id : order) {
        if (cap + deployment.vm(id).capacity > budget) continue;
        cap += deployment.vm(id).capacity;
        value += deployment.vm(id).value;
      }
      largest_stats.offloaded.add(cap);
      largest_stats.value.add(value);
    }

    // Naive: random picks until the budget is hit.
    {
      auto order = candidates;
      rng.shuffle(order);
      int cap = 0;
      double value = 0.0;
      for (wl::VmId id : order) {
        if (cap + deployment.vm(id).capacity > budget) continue;
        cap += deployment.vm(id).capacity;
        value += deployment.vm(id).value;
      }
      random_stats.offloaded.add(cap);
      random_stats.value.add(value);
    }
  }

  common::Table table({"rule", "mean offloaded cap", "mean sacrificed value",
                       "value per offloaded unit"});
  const auto add_row = [&](const char* name, const SelectionStats& stats) {
    table.begin_row()
        .add(name)
        .add(stats.offloaded.mean(), 2)
        .add(stats.value.mean(), 2)
        .add(stats.offloaded.mean() > 0 ? stats.value.mean() / stats.offloaded.mean() : 0.0,
             3);
  };
  add_row("PRIORITY knapsack (Alg. 2)", knapsack_stats);
  add_row("largest-capacity-first", largest_stats);
  add_row("random fill", random_stats);
  table.print(std::cout);

  std::cout << "\nthe knapsack achieves the same (maximal) offload at strictly lower\n"
               "sacrificed value than both naive rules.\n";
  return 0;
}
