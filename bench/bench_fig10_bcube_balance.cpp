// Figure 10: the same balance experiment on BCube — stddev of server
// workload percentages over 24 migration rounds keeps going down.

#include <iostream>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "topology/bcube.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 10", "Sheriff on BCube: workload stddev vs migration round (0..24)",
      "the stddev of server workload percentages keeps going down on the "
      "server-centric topology too");

  topo::BCubeOptions bopt;
  bopt.ports = 8;  // BCube(8,1): 64 servers, 8 racks
  bopt.levels = 1;
  const auto topology = topo::build_bcube(bopt);
  std::cout << "topology: " << topology.name() << " (" << topology.host_count()
            << " servers, " << topology.rack_count() << " racks)\n\n";

  const auto result = bench::run_balance(topology, 24, 1001);

  common::Table table({"migration round", "workload stddev %"});
  for (std::size_t r = 0; r < result.stddev_by_round.size(); ++r) {
    table.begin_row().add(r).add(result.stddev_by_round[r], 2);
  }
  table.print(std::cout);

  common::PlotOptions plot;
  plot.title = "\nworkload stddev (%) by migration round";
  plot.series_names = {"stddev"};
  std::cout << common::render_plot(result.stddev_by_round, plot);

  const double first = result.stddev_by_round.front();
  const double last = result.stddev_by_round.back();
  std::cout << "\nstart " << common::format_fixed(first, 2) << "% -> end "
            << common::format_fixed(last, 2) << "% ("
            << common::format_fixed(100.0 * (first - last) / first, 1) << "% reduction), "
            << result.total_migrations << " migrations, " << result.total_alerts
            << " alerts\n"
            << (last < first ? "balance improves, matching Fig. 10\n"
                             : "NO IMPROVEMENT (unexpected)\n");
  return 0;
}
