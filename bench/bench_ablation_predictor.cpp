// Ablation: pre-alert vs contingency — the paper's core argument. We run
// the same DCN with (a) no prediction (react to current state only),
// (b) Holt smoothing, and (c) the full ARIMA+NARNET ensemble (on a small
// instance), and measure how long hosts stay overloaded.

#include <iostream>

#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "topology/fat_tree.hpp"

namespace {

struct ModeTotals {
  double overloaded_host_rounds = 0.0;
  std::size_t alerts = 0;
  std::size_t migrations = 0;
  double final_stddev = 0.0;
};

ModeTotals run(const sheriff::topo::Topology& topology, sheriff::core::PredictorKind kind,
               int rounds) {
  using namespace sheriff;
  core::EngineConfig config;
  config.parallel_collect = false;
  config.predictor = kind;
  config.sheriff.prediction_horizon = 3;  // act three periods early
  if (kind == core::PredictorKind::kNaive) {
    // Contingency baseline: no forecasting, and reaction only once a host
    // is effectively at the wall (the behaviour the paper argues against).
    config.sheriff.host_overload_percent = 95.0;
    config.sheriff.hotspot_factor = 3.5;
    config.sheriff.hotspot_floor_percent = 45.0;
  }
  auto deploy = bench::bench_deployment_options(66);
  deploy.hot_vm_fraction = 0.2;
  deploy.hot_host_bias = 4.0;
  deploy.skew_weight = 10.0;
  core::DistributedEngine engine(topology, deploy, config);

  // "Overloaded" for this drill: a host carrying more than twice the fleet
  // mean and over 40% — the hotspots pre-alerting is meant to dissolve.
  ModeTotals totals;
  for (int r = 0; r < rounds; ++r) {
    const auto m = engine.run_round();
    totals.alerts += m.host_alerts + m.tor_alerts + m.switch_alerts;
    totals.migrations += m.migrations;
    const double mean = engine.deployment().workload_mean();
    for (const auto& node : topology.nodes()) {
      if (node.kind != topo::NodeKind::kHost) continue;
      const double load = engine.deployment().host_load_percent(node.id);
      if (load > 40.0 && load > 2.0 * mean) totals.overloaded_host_rounds += 1.0;
    }
  }
  totals.final_stddev = engine.deployment().workload_stddev();
  return totals;
}

}  // namespace

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Ablation D", "prediction ablation: contingency vs Holt vs ARIMA+NARNET ensemble",
      "the paper's motivation: pre-control beats contingency — predicting overloads "
      "and acting early leaves hosts overloaded for less time");

  topo::FatTreeOptions topt;
  topt.pods = 4;
  topt.hosts_per_rack = 2;  // small so the ensemble stays affordable
  const auto topology = topo::build_fat_tree(topt);
  const int rounds = 60;

  const auto naive = run(topology, core::PredictorKind::kNaive, rounds);
  const auto holt = run(topology, core::PredictorKind::kHolt, rounds);
  const auto ensemble = run(topology, core::PredictorKind::kEnsemble, rounds);

  common::Table table({"predictor", "overloaded host-rounds", "alerts", "migrations",
                       "final stddev %"});
  const auto add_row = [&](const char* name, const ModeTotals& t) {
    table.begin_row()
        .add(name)
        .add(t.overloaded_host_rounds, 0)
        .add(t.alerts)
        .add(t.migrations)
        .add(t.final_stddev, 2);
  };
  add_row("none (contingency)", naive);
  add_row("Holt smoothing", holt);
  add_row("ARIMA+NARNET ensemble", ensemble);
  table.print(std::cout);

  std::cout << "\nprediction lets shims fire alerts before hosts hit the wall, which is\n"
               "the paper's pre-alert argument in one table.\n";
  return 0;
}
