// Figures 3–5: the raw workload traces. The paper plots proprietary
// ZopleCloud data (CPU utilization over 24 h, disk I/O rate over 24 h,
// switch traffic over a week); this bench regenerates our calibrated
// synthetic stand-ins and reports their summary statistics and shapes.

#include <iostream>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "timeseries/acf.hpp"
#include "workload/trace_generator.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 3-5", "raw workload traces (synthetic stand-ins for the ZopleCloud data)",
      "CPU: clear diurnal swings within 0-100%; disk I/O: noisy baseline with heavy "
      "spikes up to ~1200 MB; weekly traffic: regular daily peaks and troughs with "
      "lighter weekends");

  struct TraceSpec {
    const char* figure;
    const char* name;
    const char* unit;
    std::vector<double> data;
    int seasonal_lag;
  };
  std::vector<TraceSpec> traces;
  traces.push_back({"Fig. 3", "CPU utilization", "%",
                    wl::make_cpu_trace(301)->generate(288), 0});
  traces.push_back({"Fig. 4", "disk I/O rate", "MB",
                    wl::make_disk_io_trace(302)->generate(288), 0});
  traces.push_back({"Fig. 5", "weekly traffic", "MB",
                    wl::make_weekly_traffic_trace(303)->generate(48 * 7), 48});

  common::Table table({"figure", "trace", "unit", "samples", "mean", "stddev", "min", "max",
                       "p99", "daily autocorr"});
  for (auto& t : traces) {
    common::RunningStats stats;
    for (double x : t.data) stats.add(x);
    const int lag = t.seasonal_lag > 0 ? t.seasonal_lag : 287;
    const auto r = ts::autocorrelation(t.data, lag);
    table.begin_row()
        .add(t.figure)
        .add(t.name)
        .add(t.unit)
        .add(t.data.size())
        .add(stats.mean(), 1)
        .add(stats.stddev(), 1)
        .add(stats.min(), 1)
        .add(stats.max(), 1)
        .add(common::quantile(t.data, 0.99), 1)
        .add(r.back(), 3);
  }
  table.print(std::cout);
  std::cout << '\n';

  for (const auto& t : traces) {
    common::PlotOptions plot;
    plot.title = std::string(t.figure) + ": " + t.name + " (" + t.unit + ")";
    plot.height = 10;
    std::cout << common::render_plot(t.data, plot) << '\n';
  }

  std::cout << "note: the paper's absolute values are proprietary; what these stand-ins\n"
               "preserve is the structure the predictors must learn (trend, periodicity,\n"
               "autocorrelation, burstiness).\n";
  return 0;
}
