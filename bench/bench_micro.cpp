// Micro-benchmarks (google-benchmark) of the algorithmic kernels Sheriff
// leans on: Floyd–Warshall, Dijkstra, Hungarian matching, max–min fair
// share, k-median local search, the knapsack, ARIMA/NARNET fitting, and
// the Eq. (1) migration decision kernel (surface build / per-candidate
// eval / bound-pruned sweep).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_support.hpp"
#include "common/rng.hpp"
#include "graph/dijkstra.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/kmedian.hpp"
#include "graph/knapsack.hpp"
#include "graph/matching.hpp"
#include "migration/cost_model.hpp"
#include "net/fair_share.hpp"
#include "net/queueing.hpp"
#include "net/rate_control.hpp"
#include "net/routing.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/holt_winters.hpp"
#include "timeseries/narnet.hpp"
#include "timeseries/simulate.hpp"
#include "topology/fat_tree.hpp"
#include "workload/deployment.hpp"
#include "workload/trace_generator.hpp"

namespace {

using namespace sheriff;

graph::Graph random_graph(std::size_t n, std::size_t extra, common::Pcg32& rng) {
  graph::Graph g(n);
  for (graph::Vertex v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<graph::Vertex>(rng.next_below(v)), rng.uniform(0.1, 10.0));
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const auto a = static_cast<graph::Vertex>(rng.next_below(static_cast<std::uint32_t>(n)));
    const auto b = static_cast<graph::Vertex>(rng.next_below(static_cast<std::uint32_t>(n)));
    if (a != b) g.add_edge(a, b, rng.uniform(0.1, 10.0));
  }
  return g;
}

void BM_FloydWarshall(benchmark::State& state) {
  common::Pcg32 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 3 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::floyd_warshall(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FloydWarshall)->Arg(32)->Arg(64)->Arg(128)->Complexity(benchmark::oNCubed);

void BM_DijkstraFatTree(benchmark::State& state) {
  topo::FatTreeOptions options;
  options.pods = static_cast<int>(state.range(0));
  const auto t = topo::build_fat_tree(options);
  const auto g = t.wired_graph(topo::EdgeWeight::kHops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(g, 0));
  }
}
BENCHMARK(BM_DijkstraFatTree)->Arg(8)->Arg(16)->Arg(24);

void BM_HungarianMatching(benchmark::State& state) {
  common::Pcg32 rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::AssignmentProblem problem(n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < 2 * n; ++c) problem.set_cost(r, c, rng.uniform(0.0, 100.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::solve_assignment(problem));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HungarianMatching)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_MaxMinFairShare(benchmark::State& state) {
  topo::FatTreeOptions options;
  options.pods = 8;
  const auto t = topo::build_fat_tree(options);
  const net::Router router(t);
  common::Pcg32 rng(3);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows;
  for (net::FlowId id = 0; id < static_cast<net::FlowId>(state.range(0)); ++id) {
    net::Flow f;
    f.id = id;
    f.src_host = rng.pick(hosts);
    f.dst_host = rng.pick(hosts);
    if (f.src_host == f.dst_host) continue;
    f.demand_gbps = rng.uniform(0.05, 1.5);
    flows.push_back(f);
  }
  router.route_all(flows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::max_min_fair_share(t, flows));
  }
}
BENCHMARK(BM_MaxMinFairShare)->Arg(128)->Arg(512)->Arg(2048);

// The incremental solver under the engine's steady-state shape: each
// iteration churns the demand of ~10% of the flows (a rotating subset)
// and re-solves. Measures the event-driven water-fill kernel plus dirty
// detection — compare against BM_MaxMinFairShare at the same flow count
// for the from-scratch cost it replaces.
void BM_IncrementalFairShareChurn(benchmark::State& state) {
  topo::FatTreeOptions options;
  options.pods = 8;
  const auto t = topo::build_fat_tree(options);
  const net::Router router(t);
  common::Pcg32 rng(3);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows;
  for (net::FlowId id = 0; id < static_cast<net::FlowId>(state.range(0)); ++id) {
    net::Flow f;
    f.id = id;
    f.src_host = rng.pick(hosts);
    f.dst_host = rng.pick(hosts);
    if (f.src_host == f.dst_host) continue;
    f.demand_gbps = rng.uniform(0.05, 1.5);
    flows.push_back(f);
  }
  router.route_all(flows);
  net::FairShareSolver solver(t);
  solver.solve(flows);
  std::size_t phase = 0;
  for (auto _ : state) {
    for (std::size_t f = phase; f < flows.size(); f += 10) {
      flows[f].demand_gbps *= (phase % 2 == 0) ? 1.1 : 1.0 / 1.1;
    }
    phase = (phase + 1) % 10;
    benchmark::DoNotOptimize(solver.solve(flows));
  }
}
BENCHMARK(BM_IncrementalFairShareChurn)->Arg(128)->Arg(512)->Arg(2048);

void BM_KMedianLocalSearch(benchmark::State& state) {
  common::Pcg32 rng(4);
  const std::size_t n = 48;
  std::vector<std::pair<double, double>> pts(n);
  for (auto& p : pts) p = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
  graph::DistanceMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      m.set(i, j, std::sqrt(dx * dx + dy * dy));
    }
  }
  graph::KMedianInstance instance;
  instance.distance = &m;
  instance.k = 6;
  for (std::size_t i = 0; i < n; ++i) {
    instance.clients.push_back(i);
    instance.facilities.push_back(i);
  }
  const auto p = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::local_search_kmedian(instance, p));
  }
}
BENCHMARK(BM_KMedianLocalSearch)->Arg(1)->Arg(2);

void BM_Knapsack(benchmark::State& state) {
  common::Pcg32 rng(5);
  std::vector<graph::KnapsackItem> items;
  for (int i = 0; i < 64; ++i) items.push_back({1 + rng.next_below(20), rng.uniform(0.0, 10.0)});
  const auto budget = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::min_value_knapsack(items, budget));
  }
}
BENCHMARK(BM_Knapsack)->Arg(50)->Arg(200);

void BM_ArimaFit(benchmark::State& state) {
  common::Pcg32 rng(6);
  const auto series =
      ts::simulate_arma({0.6}, {0.3}, 1.0, 1.0, static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    ts::ArimaModel model(ts::ArimaOrder{1, 1, 1});
    model.fit(series);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_ArimaFit)->Arg(256)->Arg(1024);

void BM_NarnetFit(benchmark::State& state) {
  auto gen = wl::make_weekly_traffic_trace(7);
  const auto series = gen->generate(336);
  for (auto _ : state) {
    ts::NarNet::Options options;
    options.inputs = 8;
    options.hidden = static_cast<int>(state.range(0));
    options.max_epochs = 60;
    ts::NarNet net(options);
    net.fit(series);
    benchmark::DoNotOptimize(net);
  }
}
BENCHMARK(BM_NarnetFit)->Arg(10)->Arg(20);

void BM_HoltWintersFit(benchmark::State& state) {
  auto gen = wl::make_weekly_traffic_trace(8);
  const auto series = gen->generate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ts::HoltWintersModel::Options options;
    options.period = 48;
    ts::HoltWintersModel model(options);
    model.fit(series);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_HoltWintersFit)->Arg(336)->Arg(1344);

void BM_QcnControllerUpdate(benchmark::State& state) {
  topo::FatTreeOptions options;
  options.pods = 8;
  options.tor_agg_gbps = 1.0;
  const auto t = topo::build_fat_tree(options);
  const net::Router router(t);
  common::Pcg32 rng(9);
  const auto hosts = t.nodes_of_kind(topo::NodeKind::kHost);
  std::vector<net::Flow> flows;
  for (net::FlowId id = 0; id < static_cast<net::FlowId>(state.range(0)); ++id) {
    net::Flow f;
    f.id = id;
    f.src_host = rng.pick(hosts);
    f.dst_host = rng.pick(hosts);
    if (f.src_host == f.dst_host) continue;
    f.demand_gbps = rng.uniform(0.5, 2.0);
    flows.push_back(f);
  }
  router.route_all(flows);
  net::SwitchQueues queues(t);
  net::QcnRateController controller;
  const auto shares = net::max_min_fair_share(t, flows);
  queues.update(shares, flows);
  for (auto _ : state) {
    controller.update(flows, queues);
    benchmark::DoNotOptimize(controller.tracked_flows());
  }
}
BENCHMARK(BM_QcnControllerUpdate)->Arg(256)->Arg(1024);

// Shared fixture for the Eq. (1) decision-kernel benches: a k=8 Fat-Tree
// with the Sec. VI-B oversubscribed ToR uplinks, a bench-standard VM
// population, routed flows, and one fair-share allocation installed as the
// cost model's bandwidth state — the exact inputs the manage phase hands
// the kernel each round.
struct CostKernelScenario {
  topo::Topology topo;
  wl::Deployment deployment;
  std::vector<topo::NodeId> hosts;
  std::vector<net::Flow> flows;
  net::FairShareResult shares;
  std::vector<wl::VmId> alerted;

  CostKernelScenario()
      : topo([] {
          topo::FatTreeOptions options;
          options.pods = 8;
          options.tor_agg_gbps = 1.0;
          return topo::build_fat_tree(options);
        }()),
        deployment(topo, bench::bench_deployment_options(2015)),
        hosts(topo.nodes_of_kind(topo::NodeKind::kHost)) {
    const net::Router router(topo);
    common::Pcg32 rng(7);
    for (net::FlowId id = 0; id < net::FlowId{1024}; ++id) {
      net::Flow f;
      f.id = id;
      f.src_host = rng.pick(hosts);
      f.dst_host = rng.pick(hosts);
      if (f.src_host == f.dst_host) continue;
      f.demand_gbps = rng.uniform(0.05, 1.5);
      flows.push_back(f);
    }
    router.route_all(flows);
    shares = net::max_min_fair_share(topo, flows);
    // 5 % of the VMs alerted, as the Sec. VI-B experiments assume.
    for (std::size_t id = 0; id < deployment.vm_count(); id += 20) {
      alerted.push_back(static_cast<wl::VmId>(id));
    }
  }
};

const CostKernelScenario& cost_kernel_scenario() {
  static const CostKernelScenario scenario;
  return scenario;
}

mig::CostParams cost_kernel_params() {
  mig::CostParams params;
  params.computing_cost = 100.0;
  return params;
}

void configure_cost_kernel_model(mig::MigrationCostModel& model, const CostKernelScenario& s,
                                 bool surface) {
  model.set_partner_rooted(true);
  model.set_shared_leaf_trees(true);
  model.set_surface_enabled(surface);
  model.set_bandwidth_state(&s.shares);
}

// Cost of the once-per-round SoA snapshot (set_bandwidth_state with the
// surface on rebuilds it); the price every surfaced evaluation amortizes.
void BM_CostKernelSurfaceBuild(benchmark::State& state) {
  const CostKernelScenario& s = cost_kernel_scenario();
  mig::MigrationCostModel model(s.topo, s.deployment, cost_kernel_params());
  configure_cost_kernel_model(model, s, true);
  for (auto _ : state) {
    model.set_bandwidth_state(&s.shares);
    benchmark::DoNotOptimize(model.stats().surface_builds);
  }
}
BENCHMARK(BM_CostKernelSurfaceBuild);

// Per-candidate Eq. (1) evaluation: Arg(0) = legacy per-link walk over the
// shares vectors, Arg(1) = the flat CostSurface kernel (bit-identical
// costs; the speedup is the point).
void BM_CostKernelEval(benchmark::State& state) {
  const CostKernelScenario& s = cost_kernel_scenario();
  mig::MigrationCostModel model(s.topo, s.deployment, cost_kernel_params());
  configure_cost_kernel_model(model, s, state.range(0) != 0);
  common::Pcg32 rng(11);
  std::vector<std::pair<wl::VmId, topo::NodeId>> pairs;
  for (int i = 0; i < 256; ++i) pairs.emplace_back(rng.pick(s.alerted), rng.pick(s.hosts));
  for (auto _ : state) {
    double sum = 0.0;
    for (const auto& [vm, dest] : pairs) sum += model.cost(vm, dest).total();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CostKernelEval)->Arg(0)->Arg(1);

// The single-VM matching sweep the regional shims run: one alerted VM
// against every host. Arg(0) = exhaustive (evaluate all), Arg(1) = the
// admissible-bound scan propose_matching uses (same argmin, fewer full
// evaluations).
void BM_CostKernelPrunedSweep(benchmark::State& state) {
  const CostKernelScenario& s = cost_kernel_scenario();
  mig::MigrationCostModel model(s.topo, s.deployment, cost_kernel_params());
  configure_cost_kernel_model(model, s, true);
  const bool prune = state.range(0) != 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const wl::VmId vm = s.alerted[i++ % s.alerted.size()];
    double best = graph::AssignmentProblem::kForbidden;
    for (const topo::NodeId dest : s.hosts) {
      if (prune) {
        double base = 0.0;
        if (model.provably_infeasible(vm, dest) ||
            model.candidate_lower_bound(vm, dest, &base) >= best) {
          continue;
        }
        const double cost = model.total_cost_with_base(vm, dest, base);
        if (cost < best) best = cost;
        continue;
      }
      const double cost = model.total_cost(vm, dest);
      if (cost < best) best = cost;
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_CostKernelPrunedSweep)->Arg(0)->Arg(1);

void BM_FatTreeBuild(benchmark::State& state) {
  topo::FatTreeOptions options;
  options.pods = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::build_fat_tree(options));
  }
}
BENCHMARK(BM_FatTreeBuild)->Arg(8)->Arg(24)->Arg(48);

}  // namespace

BENCHMARK_MAIN();
