// Fleet-runner bench: sweep the five bench_scale scenarios × 8 seeds (40
// independent optimized-engine runs) through fleet::run_sweep at 1 worker
// and at 8 workers, and report
//
//   * the wall-clock speedup of the 8-worker sweep (runs are independent,
//     so on an unloaded N-core machine the sweep should scale ~linearly up
//     to min(8, N) — the CI gate normalizes by the core count), and
//   * the determinism flag: every per-run metrics CRC and checkpoint CRC
//     must be identical across the two worker counts. This part is
//     machine-independent and gates hard.
//
// Emits BENCH_fleet.json; tools/check_bench_fleet.py compares it against
// bench/baselines/BENCH_fleet_baseline.json.
//
// Usage: bench_fleet [output.json] [--seeds N] [--rounds-cap N]

#include <cstddef>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "common/stats.hpp"
#include "fleet/fleet.hpp"

namespace {

using namespace sheriff;

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fleet.json";
  std::size_t seed_count = 8;
  std::size_t rounds_cap = 0;  // 0 = the scenarios' native round counts
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seed_count = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--rounds-cap" && i + 1 < argc) {
      rounds_cap = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (!arg.starts_with("--")) {
      out_path = arg;
    }
  }

  bench::print_figure_header(
      "Fleet", "concurrent multi-scenario sweep: 1 worker vs 8 workers",
      "independent runs scale near-linearly with workers up to the core "
      "count, and every per-run output byte is worker-count invariant");

  const std::vector<bench::ScaleScenario> scenarios = bench::make_scale_scenarios();
  fleet::SweepGrid grid;
  for (const bench::ScaleScenario& s : scenarios) {
    fleet::ScenarioSpec spec;
    spec.name = s.name;
    spec.topology = &s.topology;
    spec.deployment = s.deploy;
    spec.config = bench::scale_engine_config(s, /*optimized=*/true);
    spec.rounds = rounds_cap > 0 ? std::min(s.rounds, rounds_cap) : s.rounds;
    grid.scenarios.push_back(std::move(spec));
  }
  for (std::size_t i = 0; i < seed_count; ++i) grid.seeds.push_back(2015 + i);

  fleet::FleetOptions options;
  options.observe = true;
  options.checkpoint = true;

  std::cout << "\ngrid: " << grid.scenarios.size() << " scenarios x " << grid.seeds.size()
            << " seeds = " << grid.run_count() << " runs\n";

  options.workers = 1;
  const fleet::FleetReport serial = fleet::run_sweep(grid, options);
  std::cout << "  workers=1: " << std::fixed << std::setprecision(2) << serial.seconds
            << " s\n";

  options.workers = 8;
  const fleet::FleetReport wide = fleet::run_sweep(grid, options);
  std::cout << "  workers=8: " << wide.seconds << " s\n";

  bool deterministic = serial.runs.size() == wide.runs.size();
  for (std::size_t id = 0; deterministic && id < serial.runs.size(); ++id) {
    deterministic = serial.runs[id].completed && wide.runs[id].completed &&
                    serial.runs[id].metrics_crc == wide.runs[id].metrics_crc &&
                    serial.runs[id].checkpoint_crc == wide.runs[id].checkpoint_crc;
  }
  const double speedup = wide.seconds > 0.0 ? serial.seconds / wide.seconds : 0.0;
  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "  speedup:   " << speedup << "x on " << cores << " core(s)\n"
            << "  per-run outputs " << (deterministic ? "IDENTICAL" : "DIVERGED")
            << " across worker counts\n";

  // Per-scenario p50/p95 run seconds at 8 workers (informational only —
  // wall time never enters the determinism surface).
  std::cout << "\n  per-scenario run seconds (workers=8):\n";
  for (const fleet::ScenarioSpec& spec : grid.scenarios) {
    std::vector<double> seconds;
    for (const fleet::RunRecord& r : wide.runs) {
      if (r.scenario == spec.name) seconds.push_back(r.seconds);
    }
    std::cout << "    " << spec.name << ": p50 "
              << common::quantile(seconds, 0.5) << " s, p95 "
              << common::quantile(seconds, 0.95) << " s\n";
  }

  std::ofstream os(out_path);
  os << "{\n  \"schema\": \"sheriff.bench_fleet.v1\",\n"
     << "  \"cores\": " << cores << ",\n"
     << "  \"workers\": 8,\n"
     << "  \"runs\": " << grid.run_count() << ",\n"
     << "  \"seeds\": " << grid.seeds.size() << ",\n"
     << "  \"scenarios\": [";
  for (std::size_t i = 0; i < grid.scenarios.size(); ++i) {
    os << (i > 0 ? ", " : "") << '"' << grid.scenarios[i].name << '"';
  }
  os << "],\n"
     << "  \"serial_seconds\": " << serial.seconds << ",\n"
     << "  \"wide_seconds\": " << wide.seconds << ",\n"
     << "  \"speedup\": " << speedup << ",\n"
     << "  \"deterministic\": " << (deterministic ? "true" : "false") << "\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return deterministic ? 0 : 1;
}
