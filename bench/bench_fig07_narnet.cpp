// Figure 7: NARNET with 20 hidden units, 70/30 train/test split — the
// paper's nonlinear predictor. We evaluate on a nonlinear trace (weekly
// traffic with its weekday/weekend regime switching), where the paper
// argues NARNET outperforms linear ARIMA.

#include <iostream>

#include "bench_support.hpp"
#include "common/ascii_plot.hpp"
#include "common/math_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/narnet.hpp"
#include "workload/trace_generator.hpp"

int main() {
  using namespace sheriff;
  bench::print_figure_header(
      "Fig. 7", "NARNET(12 lags, 20 hidden) on weekly traffic (70/30 train/test)",
      "\"the prediction error is also very small and we can hardly recognize the "
      "difference\" — NARNET handles the nonlinear structure ARIMA misses");

  auto gen = wl::make_weekly_traffic_trace(701);
  const auto series = gen->generate(48 * 21);  // three weeks
  const std::size_t split = series.size() * 7 / 10;
  const std::vector<double> train(series.begin(),
                                  series.begin() + static_cast<std::ptrdiff_t>(split));
  const std::vector<double> actual(series.begin() + static_cast<std::ptrdiff_t>(split),
                                   series.end());

  ts::NarNet::Options options;
  options.inputs = 12;
  options.hidden = 20;  // the paper's hidden-layer size
  options.seed = 701;
  ts::NarNet net(options);
  net.fit(train);
  std::cout << "trained NARNET(12, 20); validation MSE " << net.validation_mse() << "\n\n";

  const auto preds = net.one_step_predictions(series, split);

  // ARIMA reference on the same split, to show the nonlinear gap.
  ts::ArimaModel arima(ts::ArimaOrder{1, 1, 1});
  arima.fit(train);
  const auto arima_preds = arima.one_step_predictions(series, split);

  common::Table table({"model", "test MSE", "test RMSE", "MAPE %"});
  table.begin_row()
      .add("NARNET(12,20)")
      .add(common::mean_squared_error(actual, preds), 3)
      .add(common::root_mean_squared_error(actual, preds), 3)
      .add(common::mean_absolute_percentage_error(actual, preds), 2);
  table.begin_row()
      .add("ARIMA(1,1,1) reference")
      .add(common::mean_squared_error(actual, arima_preds), 3)
      .add(common::root_mean_squared_error(actual, arima_preds), 3)
      .add(common::mean_absolute_percentage_error(actual, arima_preds), 2);
  table.print(std::cout);

  common::PlotOptions plot;
  plot.title = "\ntest window: actual vs NARNET prediction (MB)";
  plot.series_names = {"actual", "narnet"};
  const std::vector<std::vector<double>> curves{actual, preds};
  std::cout << common::render_plot(curves, plot);

  std::vector<double> error(actual.size());
  for (std::size_t i = 0; i < actual.size(); ++i) error[i] = actual[i] - preds[i];
  common::PlotOptions err_plot;
  err_plot.title = "\nprediction error";
  err_plot.height = 6;
  std::cout << common::render_plot(error, err_plot);

  const double rel = common::root_mean_squared_error(actual, preds) / common::stddev(actual);
  std::cout << "\nrelative RMSE: " << common::format_fixed(rel, 3)
            << (rel < 0.5 ? "  -> prediction hugs the signal, as in the paper\n"
                          : "  -> WEAK TRACKING (unexpected)\n");
  return 0;
}
